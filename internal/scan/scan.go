// Package scan provides the shared lexical scanner used by the C, Java,
// CORBA IDL, and Go declaration parsers. All four languages have C-style
// tokens: identifiers, integer/float literals, string/char literals,
// punctuation, and // and /* */ comments. For Go the scanner additionally
// recognizes backquoted raw strings (struct tags) and records whether a
// newline preceded each token, which is what the Go parser needs to apply
// the language's semicolon-insertion rule at member boundaries.
package scan

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/limits"
)

// TokKind classifies a token.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct
)

// String names the kind.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "eof"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokChar:
		return "char"
	case TokPunct:
		return "punctuation"
	default:
		return fmt.Sprintf("tok(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
	// AfterNL reports that at least one newline separates this token from
	// the previous one. The Go parser uses it to apply semicolon
	// insertion at declaration and member boundaries; the C/Java/IDL
	// grammars ignore it.
	AfterNL bool
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a scan or parse error carrying a source position.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// multiPunct lists multi-rune punctuation recognized by the scanner,
// longest first. The set covers everything the three declaration grammars
// need (notably "::" for IDL scoped names and "..." for varargs).
var multiPunct = []string{"...", "::", "<<", ">>", "=="}

// Scanner tokenizes an input string. Create one with New, then call Next
// repeatedly; after the input is exhausted Next returns TokEOF forever.
type Scanner struct {
	file      string
	src       string
	pos       int
	line      int
	col       int
	err       *Error
	peek      *Token
	peek2     *Token
	budget    limits.Budget
	tokens    int
	budgetErr error
}

// New returns a Scanner over src with the default input budget. file is
// used in error messages only.
func New(file, src string) *Scanner {
	return NewBudget(file, src, limits.Budget{})
}

// NewBudget returns a Scanner over src enforcing the given input budget
// (zero fields take limits defaults). If src exceeds the byte budget, or
// scanning exceeds the token budget, the scanner truncates to EOF and
// records an error wrapping limits.ErrBudget, retrievable via BudgetErr.
func NewBudget(file, src string, b limits.Budget) *Scanner {
	s := &Scanner{file: file, src: src, line: 1, col: 1, budget: b.WithDefaults()}
	if len(src) > s.budget.MaxBytes {
		s.budgetErr = limits.Exceededf("%s: input is %d bytes, budget is %d",
			file, len(src), s.budget.MaxBytes)
		s.src = "" // nothing is scanned from an oversized input
	}
	return s
}

// Budget returns the resolved budget this scanner enforces, so parsers
// sharing the scanner can apply the same depth cap.
func (s *Scanner) Budget() limits.Budget {
	return s.budget
}

// BudgetErr returns the budget violation encountered, if any. Parsers
// must prefer it over their own syntax errors: a truncated input
// produces bogus "unexpected end of input" errors downstream.
func (s *Scanner) BudgetErr() error {
	return s.budgetErr
}

// Err returns the first error encountered, if any. A budget violation
// takes precedence over lexical errors, which are a symptom of the
// truncation.
func (s *Scanner) Err() error {
	if s.budgetErr != nil {
		return s.budgetErr
	}
	if s.err == nil {
		return nil
	}
	return s.err
}

// Errorf records and returns a positioned error at the given token.
func (s *Scanner) Errorf(at Token, format string, args ...interface{}) error {
	e := &Error{File: s.file, Line: at.Line, Col: at.Col, Msg: fmt.Sprintf(format, args...)}
	if s.err == nil {
		s.err = e
	}
	return e
}

// Peek returns the next token without consuming it.
func (s *Scanner) Peek() Token {
	if s.peek == nil {
		t := s.scan()
		s.peek = &t
	}
	return *s.peek
}

// Peek2 returns the token after the next one without consuming anything.
func (s *Scanner) Peek2() Token {
	s.Peek()
	if s.peek2 == nil {
		t := s.scan()
		s.peek2 = &t
	}
	return *s.peek2
}

// Next consumes and returns the next token.
func (s *Scanner) Next() Token {
	if s.peek != nil {
		t := *s.peek
		s.peek = s.peek2
		s.peek2 = nil
		return t
	}
	return s.scan()
}

// Accept consumes the next token if it is punctuation with the given text
// and reports whether it did.
func (s *Scanner) Accept(punct string) bool {
	t := s.Peek()
	if t.Kind == TokPunct && t.Text == punct {
		s.Next()
		return true
	}
	return false
}

// AcceptIdent consumes the next token if it is the given identifier
// (keyword) and reports whether it did.
func (s *Scanner) AcceptIdent(word string) bool {
	t := s.Peek()
	if t.Kind == TokIdent && t.Text == word {
		s.Next()
		return true
	}
	return false
}

// Expect consumes the next token, which must be punctuation with the given
// text.
func (s *Scanner) Expect(punct string) (Token, error) {
	t := s.Next()
	if t.Kind != TokPunct || t.Text != punct {
		return t, s.Errorf(t, "expected %q, found %s", punct, t)
	}
	return t, nil
}

// ExpectIdent consumes the next token, which must be an identifier, and
// returns its text.
func (s *Scanner) ExpectIdent() (Token, error) {
	t := s.Next()
	if t.Kind != TokIdent {
		return t, s.Errorf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

func (s *Scanner) scan() Token {
	before := s.line
	s.skipSpaceAndComments()
	start := Token{Line: s.line, Col: s.col, AfterNL: s.line > before}
	if s.pos >= len(s.src) {
		start.Kind = TokEOF
		return start
	}
	if s.tokens++; s.tokens > s.budget.MaxTokens {
		if s.budgetErr == nil {
			s.budgetErr = limits.Exceededf("%s:%d:%d: token budget of %d exhausted",
				s.file, s.line, s.col, s.budget.MaxTokens)
		}
		s.pos = len(s.src)
		start.Kind = TokEOF
		return start
	}
	r, size := utf8.DecodeRuneInString(s.src[s.pos:])
	switch {
	case isIdentStart(r):
		begin := s.pos
		for s.pos < len(s.src) {
			r, size = utf8.DecodeRuneInString(s.src[s.pos:])
			if !isIdentCont(r) {
				break
			}
			s.advance(size)
		}
		start.Kind = TokIdent
		start.Text = s.src[begin:s.pos]
		return start
	case unicode.IsDigit(r):
		begin := s.pos
		for s.pos < len(s.src) {
			r, size = utf8.DecodeRuneInString(s.src[s.pos:])
			// Accept hex digits, suffixes, exponents, and dots; the parser
			// validates the literal form.
			if !isIdentCont(r) && r != '.' {
				break
			}
			s.advance(size)
		}
		start.Kind = TokNumber
		start.Text = s.src[begin:s.pos]
		return start
	case r == '"':
		text, ok := s.scanQuoted('"')
		if !ok {
			start.Kind = TokEOF
			return start
		}
		start.Kind = TokString
		start.Text = text
		return start
	case r == '\'':
		text, ok := s.scanQuoted('\'')
		if !ok {
			start.Kind = TokEOF
			return start
		}
		start.Kind = TokChar
		start.Text = text
		return start
	case r == '`':
		text, ok := s.scanRaw()
		if !ok {
			start.Kind = TokEOF
			return start
		}
		start.Kind = TokString
		start.Text = text
		return start
	default:
		for _, mp := range multiPunct {
			if strings.HasPrefix(s.src[s.pos:], mp) {
				s.advance(len(mp))
				start.Kind = TokPunct
				start.Text = mp
				return start
			}
		}
		s.advance(size)
		start.Kind = TokPunct
		start.Text = string(r)
		return start
	}
}

// scanQuoted consumes a quoted literal including its delimiters and
// returns the unquoted content. Escapes are kept verbatim.
func (s *Scanner) scanQuoted(quote byte) (string, bool) {
	openLine, openCol := s.line, s.col
	s.advance(1) // opening quote
	begin := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == '\\' && s.pos+1 < len(s.src) {
			s.advance(2)
			continue
		}
		if c == quote {
			text := s.src[begin:s.pos]
			s.advance(1)
			return text, true
		}
		if c == '\n' {
			break
		}
		s.advance(1)
	}
	s.Errorf(Token{Line: openLine, Col: openCol}, "unterminated %c literal", quote)
	return "", false
}

// scanRaw consumes a backquoted raw string literal (a Go struct tag).
// Raw strings have no escapes and may span newlines.
func (s *Scanner) scanRaw() (string, bool) {
	openLine, openCol := s.line, s.col
	s.advance(1) // opening backquote
	begin := s.pos
	for s.pos < len(s.src) {
		if s.src[s.pos] == '`' {
			text := s.src[begin:s.pos]
			s.advance(1)
			return text, true
		}
		s.advance(1)
	}
	s.Errorf(Token{Line: openLine, Col: openCol}, "unterminated raw string literal")
	return "", false
}

func (s *Scanner) skipSpaceAndComments() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance(1)
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '/':
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.advance(1)
			}
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '*':
			openLine, openCol := s.line, s.col
			s.advance(2)
			closed := false
			for s.pos+1 < len(s.src) {
				if s.src[s.pos] == '*' && s.src[s.pos+1] == '/' {
					s.advance(2)
					closed = true
					break
				}
				s.advance(1)
			}
			if !closed {
				s.pos = len(s.src)
				s.Errorf(Token{Line: openLine, Col: openCol}, "unterminated block comment")
			}
		case c == '#':
			// Preprocessor directives and IDL #pragma lines are skipped
			// whole; Mockingbird consumes already-preprocessed declarations.
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.advance(1)
			}
		default:
			return
		}
	}
}

func (s *Scanner) advance(n int) {
	for i := 0; i < n && s.pos < len(s.src); i++ {
		if s.src[s.pos] == '\n' {
			s.line++
			s.col = 1
		} else {
			s.col++
		}
		s.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
