package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes whatever it reads.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(c, c); _ = c.Close() }()
		}
	}()
	return ln
}

func startProxy(t *testing.T, target string, f Faults) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", target, f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestChaosProxyForwards(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{})
	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q", got)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.ForwardedBytes != int64(2*len(msg)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestChaosProxyLatencyAndChunks(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, ChunkSize: 4})
	c := dialProxy(t, p)
	msg := []byte("twelve bytes")
	start := time.Now()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// 12 bytes in 4-byte chunks = 3 sequential chunks on the request leg
	// plus at least one on the reply leg, ≥ 5ms each (the two legs
	// overlap once the echo starts flowing back).
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("round trip %v, want ≥ 20ms of injected latency", elapsed)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q", got)
	}
}

func TestChaosProxyReset(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{ResetAfter: 8})
	c := dialProxy(t, p)
	if _, err := c.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err := io.ReadAll(c)
	if err == nil {
		// A clean EOF is acceptable on platforms without RST
		// propagation, but the stream must not deliver the full echo.
		t.Log("read ended cleanly (no RST surfaced)")
	}
	if p.Stats().Resets != 1 {
		t.Errorf("resets = %d", p.Stats().Resets)
	}
}

func TestChaosProxyTruncate(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{TruncateAfter: 10})
	c := dialProxy(t, p)
	if _, err := c.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(c)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Logf("read error: %v", err)
	}
	// Budget is shared across directions: the 10-byte budget is consumed
	// by the request leg, so at most 10 bytes ever come back.
	if len(got) > 10 {
		t.Errorf("read %d bytes past the truncation budget", len(got))
	}
	if p.Stats().Truncations != 1 {
		t.Errorf("truncations = %d", p.Stats().Truncations)
	}
}

func TestChaosProxyBlackhole(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{BlackholeAfter: 1})
	c := dialProxy(t, p)
	if _, err := c.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// The connection stays open but no echo ever arrives.
	_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("read = %d, %v; want timeout on a black-holed connection", n, err)
	}
	if n > 1 {
		t.Errorf("black hole leaked %d bytes", n)
	}
}

func TestChaosProxyStall(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{StallAfter: 8, StallInterval: 20 * time.Millisecond})
	c := dialProxy(t, p)
	if _, err := c.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// The first 8 bytes flow normally; everything after trickles at one
	// byte per interval over a connection that stays open — so the read
	// times out mid-stream instead of seeing EOF or a reset, and far
	// fewer than 64 bytes ever arrive.
	_ = c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 64)
	total := 0
	var readErr error
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			readErr = err
			break
		}
	}
	var nerr net.Error
	if !errors.As(readErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("read ended with %v after %d bytes; want a timeout on a live, wedged connection", readErr, total)
	}
	if total == 0 {
		t.Error("stall delivered nothing; want a trickle")
	}
	if total >= 32 {
		t.Errorf("stall delivered %d of 64 bytes within 200ms; want a trickle", total)
	}
	if st := p.Stats(); st.Stalls < 1 {
		t.Errorf("stalls = %d, want ≥ 1", st.Stalls)
	}
}

func TestChaosProxyDropOnAccept(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{DropOnAccept: true})
	// The RST can land before or after Dial returns; either way the
	// connection must be dead without any bytes flowing.
	c, err := net.Dial("tcp", p.Addr())
	if err == nil {
		t.Cleanup(func() { _ = c.Close() })
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadAll(c); err == nil {
			t.Log("connection dropped with clean EOF")
		}
	}
	if p.Stats().Resets != 1 {
		t.Errorf("resets = %d", p.Stats().Resets)
	}
}

func TestChaosProxySetFaults(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Faults{BlackholeAfter: 1})
	c := dialProxy(t, p)
	if _, err := c.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// Heal the proxy: budgets on the old connection are spent, but a
	// fresh connection sees the new (fault-free) config.
	p.SetFaults(Faults{})
	c2 := dialProxy(t, p)
	msg := []byte("recovered")
	if _, err := c2.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	_ = c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatalf("healed proxy read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q", got)
	}
}
