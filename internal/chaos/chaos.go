// Package chaos is a fault-injecting TCP proxy for exercising the
// orb/broker transport stack under network failure. It sits between an
// orb client and server and injects the fault classes a resilient
// client must survive: added latency (with jitter), partial writes
// (small forwarded chunks), connection resets, black-holing (bytes
// silently swallowed while the connection stays open), and mid-stream
// truncation. It is used as a library by the resil/broker test
// matrices and as a standalone binary via cmd/mbirdchaos.
//
// Fault budgets (ResetAfter, BlackholeAfter, TruncateAfter) are counted
// per proxied connection, over both directions combined, so "the first
// call survives, the second dies mid-flight" scenarios are expressible
// by sizing the budget between one and two calls' traffic.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures what the proxy does to traffic. The zero value
// forwards faithfully.
type Faults struct {
	// Latency is added before each forwarded chunk.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// ChunkSize forwards at most this many bytes per write (partial
	// writes); 0 forwards whole reads.
	ChunkSize int
	// ResetAfter hard-resets the connection pair (SO_LINGER 0, so the
	// peer sees ECONNRESET where the platform supports it) once this
	// many bytes have been forwarded; 0 disables.
	ResetAfter int64
	// BlackholeAfter silently discards all traffic after this many
	// forwarded bytes while keeping both connections open; 0 disables.
	BlackholeAfter int64
	// TruncateAfter closes the connection pair cleanly once this many
	// bytes have been forwarded, truncating any frame in progress; 0
	// disables.
	TruncateAfter int64
	// StallAfter wedges the connection pair once this many bytes have
	// been forwarded: instead of closing, the proxy trickles one byte
	// per StallInterval while both connections stay open — a peer that
	// is alive but stuck, the gray failure deadline budgets and circuit
	// breakers exist for, which resets and truncations (loud, immediate
	// errors) cannot exercise. 0 disables.
	StallAfter int64
	// StallInterval is the per-byte trickle delay once stalled
	// (default 100ms).
	StallInterval time.Duration
	// DropOnAccept resets every accepted connection immediately,
	// before any bytes flow.
	DropOnAccept bool
}

// stallInterval returns the trickle delay, defaulted.
func (f Faults) stallInterval() time.Duration {
	if f.StallInterval > 0 {
		return f.StallInterval
	}
	return 100 * time.Millisecond
}

// Stats counts what the proxy has done.
type Stats struct {
	Accepted       int64
	ForwardedBytes int64
	Resets         int64
	Blackholes     int64
	Truncations    int64
	Stalls         int64
}

// Proxy is a single-target fault-injecting TCP forwarder.
type Proxy struct {
	target string
	ln     net.Listener
	stop   chan struct{}

	mu     sync.Mutex
	faults Faults
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted    atomic.Int64
	forwarded   atomic.Int64
	resets      atomic.Int64
	blackholes  atomic.Int64
	truncations atomic.Int64
	stalls      atomic.Int64
}

// New starts a proxy listening on listenAddr (e.g. "127.0.0.1:0")
// forwarding to target with the given faults.
func New(listenAddr, target string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		stop:   make(chan struct{}),
		faults: f,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults swaps the fault configuration. Connections pick up the new
// faults at their next forwarded chunk; per-connection byte budgets are
// not reset.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Faults returns the current fault configuration.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:       p.accepted.Load(),
		ForwardedBytes: p.forwarded.Load(),
		Resets:         p.resets.Load(),
		Blackholes:     p.blackholes.Load(),
		Truncations:    p.truncations.Load(),
		Stalls:         p.stalls.Load(),
	}
}

// Close stops the listener, severs every proxied connection, and waits
// for the forwarding goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		if p.Faults().DropOnAccept {
			p.resets.Add(1)
			reset(down)
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			_ = down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = down.Close()
			_ = up.Close()
			return
		}
		p.conns[down] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()

		// One shared byte budget and one shared teardown per proxied
		// connection pair.
		var used atomic.Int64
		var once sync.Once
		closeBoth := func(rst bool) {
			once.Do(func() {
				if rst {
					reset(down)
					reset(up)
				} else {
					_ = down.Close()
					_ = up.Close()
				}
				p.mu.Lock()
				delete(p.conns, down)
				delete(p.conns, up)
				p.mu.Unlock()
			})
		}
		p.wg.Add(2)
		go p.pipe(up, down, &used, closeBoth)
		go p.pipe(down, up, &used, closeBoth)
	}
}

// reset closes a TCP connection abortively (RST) where supported.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// pipe forwards src→dst applying the current faults per chunk. Once the
// pair is black-holed it keeps draining src (so both endpoints see a
// live connection) without forwarding anything.
func (p *Proxy) pipe(dst, src net.Conn, used *atomic.Int64, closeBoth func(rst bool)) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	blackholed := false
	stalled := false
	for {
		nr, err := src.Read(buf)
		if nr > 0 && !blackholed {
			data := buf[:nr]
			for len(data) > 0 {
				f := p.Faults()
				chunk := data
				if f.ChunkSize > 0 && len(chunk) > f.ChunkSize {
					chunk = chunk[:f.ChunkSize]
				}
				prev := used.Load()
				if f.BlackholeAfter > 0 && prev >= f.BlackholeAfter {
					p.blackholes.Add(1)
					blackholed = true
					break
				}
				if f.TruncateAfter > 0 && prev >= f.TruncateAfter {
					p.truncations.Add(1)
					closeBoth(false)
					return
				}
				if f.ResetAfter > 0 && prev >= f.ResetAfter {
					p.resets.Add(1)
					closeBoth(true)
					return
				}
				if f.StallAfter > 0 && prev >= f.StallAfter {
					// Wedged: trickle one byte per interval. The read
					// loop keeps running, so both peers still see a
					// live, glacially slow connection.
					if !stalled {
						stalled = true
						p.stalls.Add(1)
					}
					chunk = chunk[:1]
					if !p.sleepFor(f.stallInterval()) {
						closeBoth(false)
						return
					}
				} else {
					// Clip the chunk so each budget trips exactly at its
					// boundary (delivering the torn prefix first).
					for _, lim := range []int64{f.ResetAfter, f.TruncateAfter, f.BlackholeAfter, f.StallAfter} {
						if lim > 0 && int64(len(chunk)) > lim-prev {
							chunk = chunk[:lim-prev]
						}
					}
				}
				if !p.sleep(f) {
					closeBoth(false)
					return
				}
				if _, err := dst.Write(chunk); err != nil {
					closeBoth(false)
					return
				}
				used.Add(int64(len(chunk)))
				p.forwarded.Add(int64(len(chunk)))
				data = data[len(chunk):]
			}
		}
		if err != nil {
			if !blackholed {
				closeBoth(false)
			}
			return
		}
	}
}

// sleep applies latency+jitter, returning false if the proxy closed
// while waiting.
func (p *Proxy) sleep(f Faults) bool {
	d := f.Latency
	if f.Jitter > 0 {
		d += time.Duration(rand.Int63n(int64(f.Jitter)))
	}
	return p.sleepFor(d)
}

// sleepFor waits d, returning false if the proxy closed while waiting.
func (p *Proxy) sleepFor(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.stop:
		return false
	}
}
