package cmem

import (
	"testing"

	"repro/internal/cparse"
)

func TestAllocAlignmentAndZeroing(t *testing.T) {
	a := NewArena()
	p1 := a.Alloc(3, 1)
	p2 := a.Alloc(4, 4)
	if p1 == Null || p2 == Null {
		t.Fatal("allocations returned NULL")
	}
	if int(p2)%4 != 0 {
		t.Errorf("p2 = %d not 4-aligned", p2)
	}
	u, err := a.ReadU(p2, 4)
	if err != nil || u != 0 {
		t.Errorf("fresh memory = %d, %v", u, err)
	}
}

func TestAllocZeroSizeUnique(t *testing.T) {
	a := NewArena()
	p1 := a.Alloc(0, 1)
	p2 := a.Alloc(0, 1)
	if p1 == p2 {
		t.Error("zero-size allocations alias")
	}
}

func TestScalarRoundTrips(t *testing.T) {
	a := NewArena()
	for _, size := range []int{1, 2, 4, 8} {
		at := a.Alloc(size, size)
		v := uint64(0xF1E2D3C4B5A69788) >> (8 * (8 - size))
		if err := a.WriteU(at, size, v); err != nil {
			t.Fatal(err)
		}
		got, err := a.ReadU(at, size)
		if err != nil || got != v {
			t.Errorf("size %d: got %x, want %x (%v)", size, got, v, err)
		}
	}
}

func TestSignExtension(t *testing.T) {
	a := NewArena()
	at := a.Alloc(1, 1)
	if err := a.WriteU(at, 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	n, err := a.ReadI(at, 1)
	if err != nil || n != -1 {
		t.Errorf("ReadI = %d, %v, want -1", n, err)
	}
}

func TestFloatRoundTrips(t *testing.T) {
	a := NewArena()
	at := a.Alloc(8, 8)
	if err := a.WriteF32(at, 3.5); err != nil {
		t.Fatal(err)
	}
	f, err := a.ReadF32(at)
	if err != nil || f != 3.5 {
		t.Errorf("f32 = %v, %v", f, err)
	}
	if err := a.WriteF64(at, -2.25); err != nil {
		t.Fatal(err)
	}
	d, err := a.ReadF64(at)
	if err != nil || d != -2.25 {
		t.Errorf("f64 = %v, %v", d, err)
	}
}

func TestPointers(t *testing.T) {
	a := NewArena()
	slot := a.Alloc(4, 4)
	target := a.Alloc(4, 4)
	if err := a.WritePtr(slot, ILP32, target); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadPtr(slot, ILP32)
	if err != nil || got != target {
		t.Errorf("ptr = %d, %v, want %d", got, err, target)
	}
}

func TestNullAndBoundsChecks(t *testing.T) {
	a := NewArena()
	if _, err := a.ReadU(Null, 4); err == nil {
		t.Error("NULL read accepted")
	}
	if err := a.WriteU(Addr(1<<20), 4, 0); err == nil {
		t.Error("out-of-bounds write accepted")
	}
	if _, err := a.ReadU(a.Alloc(4, 4), 3); err == nil {
		t.Error("invalid scalar size accepted")
	}
}

func layoutsFor(t *testing.T, src string, m Model) *Layouts {
	t.Helper()
	u, err := cparse.Parse("t.h", src, cparse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewLayouts(u, m)
}

func TestPrimLayouts(t *testing.T) {
	l := layoutsFor(t, `
		struct S { char c; int i; short s; double d; float f; };
	`, ILP32)
	u := l.u.Lookup("S")
	lay, err := l.Of(u.Type)
	if err != nil {
		t.Fatal(err)
	}
	// c@0, i@4, s@8, d@16 (8-aligned), f@24 → size 32, align 8.
	want := []int{0, 4, 8, 16, 24}
	for i, w := range want {
		if lay.Offsets[i] != w {
			t.Errorf("offset[%d] = %d, want %d", i, lay.Offsets[i], w)
		}
	}
	if lay.Size != 32 || lay.Align != 8 {
		t.Errorf("size/align = %d/%d, want 32/8", lay.Size, lay.Align)
	}
}

func TestPointerSizeByModel(t *testing.T) {
	for _, c := range []struct {
		m    Model
		want int
	}{{ILP32, 4}, {LP64, 8}} {
		l := layoutsFor(t, `struct P { char c; int *p; };`, c.m)
		lay, err := l.Of(l.u.Lookup("P").Type)
		if err != nil {
			t.Fatal(err)
		}
		if lay.Offsets[1] != c.want {
			t.Errorf("model %d: pointer offset = %d, want %d", c.m, lay.Offsets[1], c.want)
		}
	}
}

func TestUnionLayout(t *testing.T) {
	l := layoutsFor(t, `union U { char c; double d; short s; };`, ILP32)
	lay, err := l.Of(l.u.Lookup("U").Type)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Size != 8 || lay.Align != 8 {
		t.Errorf("union size/align = %d/%d, want 8/8", lay.Size, lay.Align)
	}
	for i, off := range lay.Offsets {
		if off != 0 {
			t.Errorf("union member %d at offset %d", i, off)
		}
	}
}

func TestArrayLayout(t *testing.T) {
	l := layoutsFor(t, `typedef float point[2]; struct Seg { point a; point b; };`, ILP32)
	lay, err := l.Of(l.u.Lookup("Seg").Type)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Size != 16 || lay.Offsets[1] != 8 {
		t.Errorf("Seg layout = %+v", lay)
	}
}

func TestNestedStructLayout(t *testing.T) {
	l := layoutsFor(t, `
		struct Inner { char c; double d; };
		struct Outer { char pad; struct Inner in; };
	`, ILP32)
	lay, err := l.Of(l.u.Lookup("Outer").Type)
	if err != nil {
		t.Fatal(err)
	}
	// Inner has align 8 and size 16; Outer: pad@0, in@8 → size 24.
	if lay.Offsets[1] != 8 || lay.Size != 24 {
		t.Errorf("Outer layout = %+v", lay)
	}
}

func TestEnumLayout(t *testing.T) {
	l := layoutsFor(t, `enum E { A, B }; struct S { enum E e; };`, ILP32)
	lay, err := l.Of(l.u.Lookup("S").Type)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Size != 4 {
		t.Errorf("enum struct size = %d", lay.Size)
	}
}

func TestIndefiniteArrayHasNoLayout(t *testing.T) {
	l := layoutsFor(t, `void f(float xs[]);`, ILP32)
	fn := l.u.Lookup("f").Type
	if _, err := l.Of(fn.Params[0].Type); err == nil {
		t.Error("indefinite array layout computed")
	}
}

func TestSelfContainingStructRejected(t *testing.T) {
	l := layoutsFor(t, `struct Node { int v; struct Node *next; };`, ILP32)
	// Through a pointer is fine.
	if _, err := l.Of(l.u.Lookup("Node").Type); err != nil {
		t.Errorf("linked node layout failed: %v", err)
	}
}

func TestEmptyStructSize(t *testing.T) {
	l := layoutsFor(t, `struct E {};`, ILP32)
	lay, err := l.Of(l.u.Lookup("E").Type)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Size != 1 {
		t.Errorf("empty struct size = %d, want 1", lay.Size)
	}
}
