// Package cmem simulates C memory: a flat byte arena addressed by offsets,
// with the layout rules (sizeof, alignof, struct padding, little-endian
// scalar encoding) of the ILP32 and LP64 data models. The generated C-side
// stubs of the paper read and write real process memory through JNI; here
// the binding layer reads and writes an Arena, exercising the identical
// layout and indirection logic (NULL pointers, pointer-to-struct,
// contiguous arrays with out-of-band lengths).
package cmem

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stype"
)

// Addr is a simulated address: a byte offset into an Arena. 0 is NULL.
type Addr uint32

// Null is the NULL address.
const Null Addr = 0

// Model selects pointer and long sizes.
type Model uint8

// Data models.
const (
	// ILP32: int/long/pointer are 32 bits (the paper's platforms).
	ILP32 Model = iota + 1
	// LP64: long/pointer are 64 bits.
	LP64
)

// PointerSize returns the pointer size in bytes.
func (m Model) PointerSize() int {
	if m == LP64 {
		return 8
	}
	return 4
}

// Arena is a growable simulated address space. The first word is reserved
// so that no allocation receives address 0.
type Arena struct {
	buf []byte
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{buf: make([]byte, 8)}
}

// Size returns the current arena extent in bytes.
func (a *Arena) Size() int { return len(a.buf) }

// Alloc reserves size bytes aligned to align and returns the address. The
// memory is zeroed. Alloc panics on non-positive alignment; size 0 yields
// a valid unique address.
func (a *Arena) Alloc(size, align int) Addr {
	if align <= 0 {
		panic("cmem: non-positive alignment")
	}
	if size < 0 {
		panic("cmem: negative size")
	}
	off := (len(a.buf) + align - 1) / align * align
	need := off + size
	if size == 0 {
		need = off + 1
	}
	for len(a.buf) < need {
		a.buf = append(a.buf, 0)
	}
	return Addr(off)
}

func (a *Arena) check(at Addr, n int) error {
	if at == Null {
		return fmt.Errorf("cmem: NULL dereference")
	}
	if int(at)+n > len(a.buf) {
		return fmt.Errorf("cmem: access [%d,%d) beyond arena size %d", at, int(at)+n, len(a.buf))
	}
	return nil
}

// WriteU reads and writes little-endian unsigned scalars of 1, 2, 4, or 8
// bytes.
func (a *Arena) WriteU(at Addr, size int, v uint64) error {
	if err := a.check(at, size); err != nil {
		return err
	}
	switch size {
	case 1:
		a.buf[at] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(a.buf[at:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(a.buf[at:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(a.buf[at:], v)
	default:
		return fmt.Errorf("cmem: invalid scalar size %d", size)
	}
	return nil
}

// ReadU reads a little-endian unsigned scalar.
func (a *Arena) ReadU(at Addr, size int) (uint64, error) {
	if err := a.check(at, size); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(a.buf[at]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(a.buf[at:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(a.buf[at:])), nil
	case 8:
		return binary.LittleEndian.Uint64(a.buf[at:]), nil
	default:
		return 0, fmt.Errorf("cmem: invalid scalar size %d", size)
	}
}

// ReadI reads a sign-extended scalar.
func (a *Arena) ReadI(at Addr, size int) (int64, error) {
	u, err := a.ReadU(at, size)
	if err != nil {
		return 0, err
	}
	shift := uint(64 - 8*size)
	return int64(u<<shift) >> shift, nil
}

// WriteF32 writes an IEEE 754 binary32 value.
func (a *Arena) WriteF32(at Addr, v float32) error {
	return a.WriteU(at, 4, uint64(math.Float32bits(v)))
}

// ReadF32 reads an IEEE 754 binary32 value.
func (a *Arena) ReadF32(at Addr) (float32, error) {
	u, err := a.ReadU(at, 4)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(uint32(u)), nil
}

// WriteF64 writes an IEEE 754 binary64 value.
func (a *Arena) WriteF64(at Addr, v float64) error {
	return a.WriteU(at, 8, math.Float64bits(v))
}

// ReadF64 reads an IEEE 754 binary64 value.
func (a *Arena) ReadF64(at Addr) (float64, error) {
	u, err := a.ReadU(at, 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// WritePtr writes a pointer-sized address.
func (a *Arena) WritePtr(at Addr, m Model, target Addr) error {
	return a.WriteU(at, m.PointerSize(), uint64(target))
}

// ReadPtr reads a pointer-sized address.
func (a *Arena) ReadPtr(at Addr, m Model) (Addr, error) {
	u, err := a.ReadU(at, m.PointerSize())
	if err != nil {
		return 0, err
	}
	return Addr(u), nil
}

// Layout describes the concrete representation of a C type: its size,
// alignment, and (for structs/unions) field offsets.
type Layout struct {
	Size    int
	Align   int
	Offsets []int // struct/union member offsets, parallel to Fields
}

// Layouts computes and caches layouts for a universe's declarations.
type Layouts struct {
	u     *stype.Universe
	model Model
	memo  map[*stype.Type]*Layout
	busy  map[*stype.Type]bool
}

// NewLayouts returns a layout calculator for the universe under the data
// model.
func NewLayouts(u *stype.Universe, model Model) *Layouts {
	return &Layouts{u: u, model: model, memo: make(map[*stype.Type]*Layout), busy: make(map[*stype.Type]bool)}
}

// Model returns the data model in force.
func (l *Layouts) Model() Model { return l.model }

// Of computes the layout of a type.
func (l *Layouts) Of(t *stype.Type) (*Layout, error) {
	if t == nil {
		return nil, fmt.Errorf("cmem: nil type")
	}
	if lay, ok := l.memo[t]; ok {
		return lay, nil
	}
	if l.busy[t] {
		return nil, fmt.Errorf("cmem: %s directly contains itself (infinite size)", t)
	}
	l.busy[t] = true
	defer delete(l.busy, t)
	lay, err := l.compute(t)
	if err != nil {
		return nil, err
	}
	l.memo[t] = lay
	return lay, nil
}

func (l *Layouts) compute(t *stype.Type) (*Layout, error) {
	switch t.Kind {
	case stype.KPrim:
		s, err := primSize(t.Prim, l.model)
		if err != nil {
			return nil, err
		}
		return &Layout{Size: s, Align: s}, nil
	case stype.KEnum:
		return &Layout{Size: 4, Align: 4}, nil
	case stype.KPointer, stype.KFunc:
		p := l.model.PointerSize()
		return &Layout{Size: p, Align: p}, nil
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = l.u.Lookup(t.Name)
		}
		if target == nil {
			return nil, fmt.Errorf("cmem: unresolved type %q", t.Name)
		}
		return l.Of(target.Type)
	case stype.KStruct:
		lay := &Layout{Align: 1}
		off := 0
		for _, f := range t.Fields {
			fl, err := l.Of(f.Type)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", f.Name, err)
			}
			off = (off + fl.Align - 1) / fl.Align * fl.Align
			lay.Offsets = append(lay.Offsets, off)
			off += fl.Size
			if fl.Align > lay.Align {
				lay.Align = fl.Align
			}
		}
		lay.Size = (off + lay.Align - 1) / lay.Align * lay.Align
		if lay.Size == 0 {
			lay.Size = 1 // as in C++/GNU C, empty structs occupy one byte
		}
		return lay, nil
	case stype.KUnion:
		lay := &Layout{Align: 1}
		for _, f := range t.Fields {
			fl, err := l.Of(f.Type)
			if err != nil {
				return nil, fmt.Errorf("member %s: %w", f.Name, err)
			}
			lay.Offsets = append(lay.Offsets, 0)
			if fl.Size > lay.Size {
				lay.Size = fl.Size
			}
			if fl.Align > lay.Align {
				lay.Align = fl.Align
			}
		}
		lay.Size = (lay.Size + lay.Align - 1) / lay.Align * lay.Align
		if lay.Size == 0 {
			lay.Size = 1
		}
		return lay, nil
	case stype.KArray:
		if t.Len < 0 && t.Ann.FixedLen <= 0 {
			return nil, fmt.Errorf("cmem: indefinite array has no layout (annotate a length)")
		}
		n := t.Len
		if t.Ann.FixedLen > 0 {
			n = t.Ann.FixedLen
		}
		el, err := l.Of(t.ElemType)
		if err != nil {
			return nil, err
		}
		return &Layout{Size: n * el.Size, Align: el.Align}, nil
	default:
		return nil, fmt.Errorf("cmem: type %s has no C layout", t.Kind)
	}
}

func primSize(p stype.Prim, m Model) (int, error) {
	switch p {
	case stype.PBool, stype.PI8, stype.PU8, stype.PChar8:
		return 1, nil
	case stype.PI16, stype.PU16, stype.PChar16:
		return 2, nil
	case stype.PI32, stype.PU32, stype.PF32:
		return 4, nil
	case stype.PI64, stype.PU64, stype.PF64:
		return 8, nil
	case stype.PVoid:
		return 0, fmt.Errorf("cmem: void has no size")
	default:
		return 0, fmt.Errorf("cmem: unknown primitive %s", p)
	}
}
