package synth

import (
	"testing"

	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/core"
)

// loadSuite parses, annotates, and returns a session with both sides of
// the suite loaded.
func loadSuite(t testing.TB, suite *Suite) *core.Session {
	t.Helper()
	s := core.NewSession()
	if err := s.LoadJava("java", suite.JavaSource); err != nil {
		t.Fatalf("java side: %v", err)
	}
	if err := s.LoadIDL("idl", suite.IDLSource); err != nil {
		t.Fatalf("idl side: %v", err)
	}
	if _, err := s.Annotate("java", suite.JavaScript); err != nil {
		t.Fatalf("annotation script: %v", err)
	}
	return s
}

// compareAll compares every generated class pair and returns the number
// matched.
func compareAll(t testing.TB, s *core.Session, suite *Suite) (matched, total int) {
	t.Helper()
	names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
	for _, name := range names {
		total++
		v, err := s.Compare("java", name, "idl", name)
		if err != nil {
			t.Fatalf("compare %s: %v", name, err)
		}
		if v.Relation == core.RelEquivalent {
			matched++
		} else if testing.Verbose() {
			t.Logf("%s: %s\n%s", name, v.Relation, v.Explain)
		}
	}
	return matched, total
}

// TestVisualAgeMiniature reproduces the §5 VisualAge trial: the 12-class
// miniature matches completely across the two languages using batch
// annotation.
func TestVisualAgeMiniature(t *testing.T) {
	suite := Generate(VisualAgeMiniature())
	s := loadSuite(t, suite)
	matched, total := compareAll(t, s, suite)
	if total != 12 {
		t.Fatalf("suite has %d classes, want 12", total)
	}
	if matched != total {
		t.Errorf("matched %d/%d classes", matched, total)
	}
}

// TestVisualAgeScaled50 is a step on the paper's ongoing scalability
// investigation: a 50-class interrelated suite still matches completely.
func TestVisualAgeScaled50(t *testing.T) {
	suite := Generate(VisualAgeScaled(50))
	s := loadSuite(t, suite)
	matched, total := compareAll(t, s, suite)
	if total != 50 {
		t.Fatalf("suite has %d classes, want 50", total)
	}
	if matched != total {
		t.Errorf("matched %d/%d classes", matched, total)
	}
}

// TestNotesBridge reproduces the Lotus Notes experiment: a 30-class,
// method-heavy API surface bridged completely.
func TestNotesBridge(t *testing.T) {
	suite := Generate(NotesAPI())
	s := loadSuite(t, suite)
	matched, total := compareAll(t, s, suite)
	if total != 30 {
		t.Fatalf("suite has %d classes, want 30", total)
	}
	if matched != total {
		t.Errorf("matched %d/%d classes", matched, total)
	}
}

// TestCollabMessages checks the collaborative-objects message suite: 21
// message types over the supporting classes, all matched.
func TestCollabMessages(t *testing.T) {
	suite := Generate(Collab())
	if len(suite.MessageNames) != 21 {
		t.Fatalf("message types = %d, want 21", len(suite.MessageNames))
	}
	if len(suite.DataClassNames) != 43 {
		t.Fatalf("total classes = %d, want 43 (21 messages + 22 support)", len(suite.DataClassNames))
	}
	s := loadSuite(t, suite)
	for _, name := range suite.MessageNames {
		v, err := s.Compare("java", name, "idl", name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Relation != core.RelEquivalent {
			t.Errorf("message %s: %s", name, v.Relation)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(VisualAgeMiniature())
	b := Generate(VisualAgeMiniature())
	if a.JavaSource != b.JavaSource || a.IDLSource != b.IDLSource || a.JavaScript != b.JavaScript {
		t.Error("generation is not deterministic")
	}
}

func TestShuffleActuallyShuffles(t *testing.T) {
	cfg := VisualAgeMiniature()
	cfg.Shuffle = false
	cfg.Regroup = false
	plain := Generate(cfg)
	shuffled := Generate(VisualAgeMiniature())
	if plain.IDLSource == shuffled.IDLSource {
		t.Error("shuffle and regroup had no effect")
	}
}

// TestShuffledSuiteNeedsIsomorphismRules: without commutativity the
// shuffled IDL side must fail to match, demonstrating the rules earn
// their keep on the case-study workloads.
func TestShuffledSuiteNeedsIsomorphismRules(t *testing.T) {
	suite := Generate(VisualAgeMiniature())
	s := loadSuite(t, suite)
	rules := compare.DefaultRules()
	rules.Commutativity = false
	s.SetRules(rules)
	matched, total := compareAll(t, s, suite)
	if matched == total {
		t.Errorf("all %d classes matched without commutativity; shuffle too weak", total)
	}
}

// loadGoSuite loads the Go side next to the others.
func loadGoSuite(t testing.TB, s *core.Session, suite *Suite) {
	t.Helper()
	if err := s.LoadGo("go", suite.GoSource); err != nil {
		t.Fatalf("go side: %v", err)
	}
	if _, err := s.Annotate("go", suite.GoScript); err != nil {
		t.Fatalf("go annotation script: %v", err)
	}
}

// compareAllAgainstGo compares every class between the Go side and
// another loaded universe.
func compareAllAgainstGo(t testing.TB, s *core.Session, suite *Suite, other string, names []string) (matched, total int) {
	t.Helper()
	for _, name := range names {
		total++
		v, err := s.Compare("go", name, other, name)
		if err != nil {
			t.Fatalf("compare go %s vs %s: %v", name, other, err)
		}
		if v.Relation == core.RelEquivalent {
			matched++
		} else if testing.Verbose() {
			t.Logf("%s: %s\n%s", name, v.Relation, v.Explain)
		}
	}
	return matched, total
}

// TestGoIDLSuite: the Go spelling of the VisualAge miniature matches the
// shuffled, regrouped IDL side — the fourth frontend joins the matrix.
func TestGoIDLSuite(t *testing.T) {
	suite := Generate(VisualAgeMiniature())
	s := loadSuite(t, suite)
	loadGoSuite(t, s, suite)
	names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
	matched, total := compareAllAgainstGo(t, s, suite, "idl", names)
	if matched != total {
		t.Errorf("matched %d/%d classes", matched, total)
	}
}

// TestGoJavaSuite: Go vs the Java side (same member order, different
// spellings of every primitive and reference).
func TestGoJavaSuite(t *testing.T) {
	suite := Generate(VisualAgeMiniature())
	s := loadSuite(t, suite)
	loadGoSuite(t, s, suite)
	names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
	matched, total := compareAllAgainstGo(t, s, suite, "java", names)
	if matched != total {
		t.Errorf("matched %d/%d classes", matched, total)
	}
}

// TestGoCSuite: Go vs C. C has no object types, so the round covers the
// data classes; booleans and chars ride on annotated C integers.
func TestGoCSuite(t *testing.T) {
	suite := Generate(VisualAgeMiniature())
	s := core.NewSession()
	if err := s.LoadC("c", suite.CSource, cmem.ILP32); err != nil {
		t.Fatalf("c side: %v", err)
	}
	if _, err := s.Annotate("c", suite.CScript); err != nil {
		t.Fatalf("c annotation script: %v", err)
	}
	if err := s.LoadGo("go", suite.GoSource); err != nil {
		t.Fatalf("go side: %v", err)
	}
	if _, err := s.Annotate("go", suite.GoScript); err != nil {
		t.Fatalf("go annotation script: %v", err)
	}
	matched, total := compareAllAgainstGo(t, s, suite, "c", suite.DataClassNames)
	if matched != total {
		t.Errorf("matched %d/%d data classes", matched, total)
	}
}

// TestGoScaled50 keeps the Go frontend on the scalability curve.
func TestGoScaled50(t *testing.T) {
	suite := Generate(VisualAgeScaled(50))
	s := loadSuite(t, suite)
	loadGoSuite(t, s, suite)
	names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
	matched, total := compareAllAgainstGo(t, s, suite, "idl", names)
	if matched != total {
		t.Errorf("matched %d/%d classes", matched, total)
	}
}
