// Package synth generates the interface suites of the paper's §5 case
// studies. The originals (the VisualAge C++ compilation engine, the Lotus
// Notes C++ API, and the collaborative-commerce message set) are
// proprietary; these generators synthesize suites with the reported
// shapes — N highly inter-related classes with thousands of methods, a
// 30-class API surface, 21 message types over 22 support classes — as
// *source text* in two languages, so the whole pipeline (parse, batch
// annotation, lowering, comparison) is exercised exactly as the paper's
// trials exercised it.
//
// Each suite is a set of declaration files describing the same abstract
// interfaces: a Java side; an IDL side with member and method order
// shuffled and field groups regrouped, so that matching requires the
// commutativity and associativity rules; a Go side (structs and
// interfaces, mirroring the Java ordering, with `mbird:"..."` tags for
// the char fields and a script for char params/results); and a C side
// (data classes only — C has no object types — with fields shuffled and
// a script aligning booleans and chars onto C's integer types).
package synth

import (
	"fmt"
	"strings"
)

// Config sizes a generated suite.
type Config struct {
	// DataClasses is the number of by-value data classes.
	DataClasses int
	// ServiceClasses is the number of method-bearing classes.
	ServiceClasses int
	// FieldsPerClass is the number of primitive fields per data class.
	FieldsPerClass int
	// RefsPerClass is the number of cross-references per data class
	// (each points at an earlier data class, making the suite
	// "highly inter-related").
	RefsPerClass int
	// MethodsPerService is the number of methods per service class.
	MethodsPerService int
	// ParamsPerMethod is the parameter count per method.
	ParamsPerMethod int
	// Seed drives the deterministic generator.
	Seed uint64
	// Shuffle reorders fields, parameters, and methods on the IDL side
	// (stressing commutativity).
	Shuffle bool
	// Regroup nests runs of IDL struct fields into helper structs
	// (stressing associativity).
	Regroup bool
}

// VisualAgeMiniature is the 12-class miniature of the VisualAge trial.
func VisualAgeMiniature() Config {
	return Config{
		DataClasses: 8, ServiceClasses: 4,
		FieldsPerClass: 4, RefsPerClass: 2,
		MethodsPerService: 6, ParamsPerMethod: 3,
		Seed: 12, Shuffle: true, Regroup: true,
	}
}

// VisualAgeScaled sizes the suite toward the full 500-class system.
func VisualAgeScaled(classes int) Config {
	data := classes * 2 / 3
	return Config{
		DataClasses: data, ServiceClasses: classes - data,
		FieldsPerClass: 4, RefsPerClass: 2,
		// 500 classes → ~167 services × 12 = ~2000 methods, the paper's
		// "several thousand methods" order of magnitude.
		MethodsPerService: 12, ParamsPerMethod: 3,
		Seed: uint64(classes), Shuffle: true, Regroup: true,
	}
}

// NotesAPI is the 30-class Lotus-Notes-style API surface: method-heavy
// service classes over a small set of data carriers.
func NotesAPI() Config {
	return Config{
		DataClasses: 8, ServiceClasses: 22,
		FieldsPerClass: 3, RefsPerClass: 1,
		MethodsPerService: 10, ParamsPerMethod: 2,
		Seed: 30, Shuffle: true, Regroup: false,
	}
}

// Collab is the collaborative-objects message set: 21 message types that
// indirectly incorporate 22 other application classes.
func Collab() Config {
	return Config{
		DataClasses: 43, ServiceClasses: 0,
		FieldsPerClass: 3, RefsPerClass: 2,
		MethodsPerService: 0, ParamsPerMethod: 0,
		Seed: 21, Shuffle: true, Regroup: true,
	}
}

// Suite is a generated pair of declaration sets plus the batch annotation
// scripts that align them.
type Suite struct {
	JavaSource string
	IDLSource  string
	// GoSource declares the same suite as Go structs and interfaces.
	// Value semantics make reference containment implicit, and struct
	// tags carry the char annotations, so the only scripted annotations
	// are the ones tags cannot reach (method params and results).
	GoSource string
	// CSource declares the data classes as C structs (C has no object
	// types, so service classes are omitted), fields shuffled like the
	// IDL side.
	CSource string
	// JavaScript is the batch annotation script for the Java side (§5's
	// "scripting technique … applied in batch mode").
	JavaScript string
	// GoScript annotates char-valued method params and results on the Go
	// side (fields use `mbird:"char"` tags instead).
	GoScript string
	// CScript aligns the C integer spellings of boolean (range=0..1) and
	// char (char) fields with the other sides.
	CScript string
	// DataClassNames and ServiceClassNames list the generated
	// declarations, in order.
	DataClassNames    []string
	ServiceClassNames []string
	// MessageNames is the subset of data classes playing the role of the
	// 21 collab message types (the last ones generated).
	MessageNames []string
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// prims pairs the Java, IDL, Go, and C spellings of each primitive used.
// goTag is the struct tag a Go field needs to match the others (chars);
// goAttr is the same annotation as a script attribute for params and
// results, which Go cannot tag; cAttr aligns the C integer spelling
// (C has no boolean, and its wide char is an annotated unsigned short).
var prims = []struct{ java, idl, gosrc, goTag, goAttr, c, cAttr string }{
	{"int", "long", "int32", "", "", "int", ""},
	{"short", "short", "int16", "", "", "short", ""},
	{"long", "long long", "int64", "", "", "long long", ""},
	{"float", "float", "float32", "", "", "float", ""},
	{"double", "double", "float64", "", "", "double", ""},
	{"boolean", "boolean", "bool", "", "", "int", "range=0..1"},
	{"char", "wchar", "uint16", "`mbird:\"char\"`", "char", "unsigned short", "char"},
}

type field struct {
	name string
	prim int // index into prims, or -1 for a reference
	ref  int // data class index when prim == -1
}

type method struct {
	name   string
	result int // prims index, or -1 for void
	params []field
}

type class struct {
	name    string
	fields  []field
	methods []method
}

// Generate builds a suite from the configuration.
func Generate(cfg Config) *Suite {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &rng{s: cfg.Seed*2654435761 + 11}

	data := make([]class, cfg.DataClasses)
	for i := range data {
		c := class{name: fmt.Sprintf("D%d", i)}
		for f := 0; f < cfg.FieldsPerClass; f++ {
			c.fields = append(c.fields, field{
				name: fmt.Sprintf("f%d", f),
				prim: r.intn(len(prims)),
			})
		}
		for j := 0; j < cfg.RefsPerClass && i > 0; j++ {
			// References point into a shallow band of carrier classes:
			// by-value containment of arbitrarily deep reference chains
			// denotes exponentially wide value trees, which no real
			// interface (or tool) passes by value.
			band := i
			if band > 4 {
				band = 4
			}
			c.fields = append(c.fields, field{
				name: fmt.Sprintf("r%d", j),
				prim: -1,
				ref:  r.intn(band),
			})
		}
		data[i] = c
	}

	services := make([]class, cfg.ServiceClasses)
	for i := range services {
		c := class{name: fmt.Sprintf("S%d", i)}
		for m := 0; m < cfg.MethodsPerService; m++ {
			mm := method{name: fmt.Sprintf("op%d", m), result: r.intn(len(prims)+1) - 1}
			for p := 0; p < cfg.ParamsPerMethod; p++ {
				prm := field{name: fmt.Sprintf("a%d", p), prim: r.intn(len(prims))}
				if cfg.DataClasses > 0 && r.intn(3) == 0 {
					prm.prim = -1
					prm.ref = r.intn(cfg.DataClasses)
				}
				mm.params = append(mm.params, prm)
			}
			c.methods = append(c.methods, mm)
		}
		services[i] = c
	}

	s := &Suite{}
	for _, c := range data {
		s.DataClassNames = append(s.DataClassNames, c.name)
	}
	for _, c := range services {
		s.ServiceClassNames = append(s.ServiceClassNames, c.name)
	}
	nMsg := 21
	if nMsg > len(data) {
		nMsg = len(data)
	}
	s.MessageNames = s.DataClassNames[len(data)-nMsg:]

	s.JavaSource = renderJava(data, services)
	s.IDLSource = renderIDL(data, services, cfg, &rng{s: cfg.Seed*97 + 3})
	s.GoSource = renderGo(data, services)
	s.CSource = renderC(data, cfg, &rng{s: cfg.Seed*131 + 7})
	s.JavaScript = renderScript(cfg)
	s.GoScript = renderGoScript(services)
	s.CScript = renderCScript(data)
	return s
}

func renderJava(data, services []class) string {
	var sb strings.Builder
	for _, c := range data {
		fmt.Fprintf(&sb, "public class %s {\n", c.name)
		for _, f := range c.fields {
			if f.prim >= 0 {
				fmt.Fprintf(&sb, "    private %s %s;\n", prims[f.prim].java, f.name)
			} else {
				fmt.Fprintf(&sb, "    private D%d %s;\n", f.ref, f.name)
			}
		}
		sb.WriteString("}\n")
	}
	for _, c := range services {
		fmt.Fprintf(&sb, "public interface %s {\n", c.name)
		for _, m := range c.methods {
			ret := "void"
			if m.result >= 0 {
				ret = prims[m.result].java
			}
			var ps []string
			for _, p := range m.params {
				ty := "D" + fmt.Sprint(p.ref)
				if p.prim >= 0 {
					ty = prims[p.prim].java
				}
				ps = append(ps, ty+" "+p.name)
			}
			fmt.Fprintf(&sb, "    %s %s(%s);\n", ret, m.name, strings.Join(ps, ", "))
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// renderIDL renders the same classes as IDL structs and interfaces, with
// optional member shuffling and field regrouping.
func renderIDL(data, services []class, cfg Config, r *rng) string {
	var sb strings.Builder
	for _, c := range data {
		fields := append([]field(nil), c.fields...)
		if cfg.Shuffle {
			shuffleFields(fields, r)
		}
		// Regrouping: pull a prefix run of ≥2 fields into a helper struct,
		// exercising associativity when compared against the flat Java
		// class.
		if cfg.Regroup && len(fields) >= 3 {
			cut := 2 + r.intn(len(fields)-2)
			helper := fmt.Sprintf("%sHead", c.name)
			fmt.Fprintf(&sb, "struct %s {\n", helper)
			for _, f := range fields[:cut] {
				fmt.Fprintf(&sb, "  %s %s;\n", idlFieldType(f), f.name)
			}
			sb.WriteString("};\n")
			fmt.Fprintf(&sb, "struct %s {\n", c.name)
			fmt.Fprintf(&sb, "  %s head;\n", helper)
			for _, f := range fields[cut:] {
				fmt.Fprintf(&sb, "  %s %s;\n", idlFieldType(f), f.name)
			}
			sb.WriteString("};\n")
			continue
		}
		fmt.Fprintf(&sb, "struct %s {\n", c.name)
		for _, f := range fields {
			fmt.Fprintf(&sb, "  %s %s;\n", idlFieldType(f), f.name)
		}
		sb.WriteString("};\n")
	}
	for _, c := range services {
		methods := append([]method(nil), c.methods...)
		if cfg.Shuffle {
			for i := len(methods) - 1; i > 0; i-- {
				j := r.intn(i + 1)
				methods[i], methods[j] = methods[j], methods[i]
			}
		}
		fmt.Fprintf(&sb, "interface %s {\n", c.name)
		for _, m := range methods {
			ret := "void"
			if m.result >= 0 {
				ret = prims[m.result].idl
			}
			params := append([]field(nil), m.params...)
			if cfg.Shuffle {
				shuffleFields(params, r)
			}
			var ps []string
			for _, p := range params {
				ps = append(ps, "in "+idlFieldType(p)+" "+p.name)
			}
			fmt.Fprintf(&sb, "  %s %s(%s);\n", ret, m.name, strings.Join(ps, ", "))
		}
		sb.WriteString("};\n")
	}
	return sb.String()
}

func idlFieldType(f field) string {
	if f.prim >= 0 {
		return prims[f.prim].idl
	}
	return fmt.Sprintf("D%d", f.ref)
}

func shuffleFields(fs []field, r *rng) {
	for i := len(fs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		fs[i], fs[j] = fs[j], fs[i]
	}
}

// renderScript emits the batch annotation script that aligns the Java
// side with the IDL side: data-class references become nonnull (IDL
// struct members are values, never null) and service-class references in
// parameters likewise.
func renderScript(cfg Config) string {
	var sb strings.Builder
	sb.WriteString("# batch annotations, applied wildcard-style (§5)\n")
	for j := 0; j < cfg.RefsPerClass; j++ {
		fmt.Fprintf(&sb, "annotate *.r%d nonnull noalias\n", j)
	}
	for p := 0; p < cfg.ParamsPerMethod; p++ {
		fmt.Fprintf(&sb, "annotate *.*.a%d nonnull noalias\n", p)
	}
	return sb.String()
}

// renderGo renders the same classes as Go structs and interfaces. Names
// are exported (F0, R0, Op0) so the Go frontend's unexported-member
// skipping keeps them; bare struct references carry Go value semantics,
// which lowering treats exactly like the nonnull/noalias script on the
// Java side. Char fields are tagged; char params and results need the
// companion script (Go has nowhere to hang a tag on them).
func renderGo(data, services []class) string {
	var sb strings.Builder
	sb.WriteString("package synth\n\n")
	for _, c := range data {
		fmt.Fprintf(&sb, "type %s struct {\n", c.name)
		for _, f := range c.fields {
			fmt.Fprintf(&sb, "\t%s %s\n", goMemberName(f.name), goFieldType(f))
		}
		sb.WriteString("}\n\n")
	}
	for _, c := range services {
		fmt.Fprintf(&sb, "type %s interface {\n", c.name)
		for _, m := range c.methods {
			var ps []string
			for _, p := range m.params {
				ty := "D" + fmt.Sprint(p.ref)
				if p.prim >= 0 {
					ty = prims[p.prim].gosrc
				}
				ps = append(ps, p.name+" "+ty)
			}
			ret := ""
			if m.result >= 0 {
				ret = " " + prims[m.result].gosrc
			}
			fmt.Fprintf(&sb, "\t%s(%s)%s\n", goMemberName(m.name), strings.Join(ps, ", "), ret)
		}
		sb.WriteString("}\n\n")
	}
	return sb.String()
}

// goMemberName exports a synthesized member name (f0 → F0, op0 → Op0).
func goMemberName(name string) string {
	return strings.ToUpper(name[:1]) + name[1:]
}

func goFieldType(f field) string {
	if f.prim < 0 {
		return fmt.Sprintf("D%d", f.ref)
	}
	ty := prims[f.prim].gosrc
	if tag := prims[f.prim].goTag; tag != "" {
		ty += " " + tag
	}
	return ty
}

// renderGoScript emits the annotation lines struct tags cannot express:
// char-valued method params and results, addressed by exact path.
func renderGoScript(services []class) string {
	var sb strings.Builder
	sb.WriteString("# char params and results (tags only reach fields)\n")
	for _, c := range services {
		for _, m := range c.methods {
			for _, p := range m.params {
				if p.prim >= 0 && prims[p.prim].goAttr != "" {
					fmt.Fprintf(&sb, "annotate %s.%s.%s %s\n", c.name, goMemberName(m.name), p.name, prims[p.prim].goAttr)
				}
			}
			if m.result >= 0 && prims[m.result].goAttr != "" {
				fmt.Fprintf(&sb, "annotate %s.%s.return %s\n", c.name, goMemberName(m.name), prims[m.result].goAttr)
			}
		}
	}
	return sb.String()
}

// renderC renders the data classes as C structs — C has no object types,
// so the service classes are omitted and C suites compare data classes
// only. Fields are shuffled like the IDL side to exercise commutativity;
// reference members are by-value struct containment, which needs no
// script because that is already C's semantics.
func renderC(data []class, cfg Config, r *rng) string {
	var sb strings.Builder
	for _, c := range data {
		fields := append([]field(nil), c.fields...)
		if cfg.Shuffle {
			shuffleFields(fields, r)
		}
		fmt.Fprintf(&sb, "struct %s {\n", c.name)
		for _, f := range fields {
			ty := fmt.Sprintf("struct D%d", f.ref)
			if f.prim >= 0 {
				ty = prims[f.prim].c
			}
			fmt.Fprintf(&sb, "    %s %s;\n", ty, f.name)
		}
		sb.WriteString("};\n")
	}
	return sb.String()
}

// renderCScript aligns C's integer spellings with the typed sides:
// boolean fields get range=0..1 (making `int` equal to the other sides'
// booleans, since a boolean is an integer restricted to 0..1) and char
// fields get the char attribute (unsigned short → UCS-2 character).
func renderCScript(data []class) string {
	var sb strings.Builder
	sb.WriteString("# C spells booleans and chars as integers; align them\n")
	for _, c := range data {
		for _, f := range c.fields {
			if f.prim >= 0 && prims[f.prim].cAttr != "" {
				fmt.Fprintf(&sb, "annotate %s.%s %s\n", c.name, f.name, prims[f.prim].cAttr)
			}
		}
	}
	return sb.String()
}
