package broker

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

func TestConvertRawFastPath(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float r; int n; } mix;")
	loadC(t, b, "y", "typedef struct { int count; float ratio; } pair;")

	mtA, err := b.Mtype("x", "mix")
	if err != nil {
		t.Fatal(err)
	}
	mtB, err := b.Mtype("y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	in := value.NewRecord(value.Real{V: 1.5}, value.NewInt(7))
	payload, err := wire.Marshal(mtA, in)
	if err != nil {
		t.Fatal(err)
	}

	got, err := b.ConvertRaw("x", "mix", "y", "pair", payload)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: the tree path through the same broker.
	outV, err := b.Convert("x", "mix", "y", "pair", in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wire.Marshal(mtB, outV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fast path bytes % x, tree path % x", got, want)
	}

	st := b.Stats()
	if st.FastConverts != 1 || st.TreeConverts != 0 {
		t.Errorf("fast=%d tree=%d, want 1/0", st.FastConverts, st.TreeConverts)
	}
	if st.XcodeCompiles != 1 || st.XcodeUnsupported != 0 || st.XcodeEntries != 1 {
		t.Errorf("xcode compiles=%d unsupported=%d entries=%d, want 1/0/1",
			st.XcodeCompiles, st.XcodeUnsupported, st.XcodeEntries)
	}

	// Warm path: the second request hits the transcoder cache.
	if _, err := b.ConvertRaw("x", "mix", "y", "pair", payload); err != nil {
		t.Fatal(err)
	}
	st = b.Stats()
	if st.XcodeHits < 1 {
		t.Errorf("XcodeHits = %d, want ≥ 1", st.XcodeHits)
	}
	if st.XcodeCompiles != 1 {
		t.Errorf("XcodeCompiles = %d after warm hit, want 1", st.XcodeCompiles)
	}

	// Invalid payloads are rejected, not passed through.
	if _, err := b.ConvertRaw("x", "mix", "y", "pair", payload[:3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := b.ConvertRaw("x", "mix", "y", "pair", append(append([]byte(nil), payload...), 1)); err == nil {
		t.Fatal("payload with trailing bytes accepted")
	}
}

// TestConvertRawSemanticFallback: a pair whose plan needs a semantic
// hook cannot be fused; ConvertRaw must fall back to the tree engine
// with identical bytes and record the cached refusal.
func TestConvertRawSemanticFallback(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadJava("analytic", "class SlopeLine { double slope; double intercept; }"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("geometric", `
		class Pt { double x; double y; }
		class SegLine { Pt a; Pt b; }
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("geometric", "annotate SegLine.a nonnull noalias\nannotate SegLine.b nonnull noalias\n"); err != nil {
		t.Fatal(err)
	}
	s.RegisterSemantic("SlopeLine", "SegLine", "slope→seg", func(v value.Value) (value.Value, error) {
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != 2 {
			return nil, fmt.Errorf("want slope/intercept record, got %s", v)
		}
		m := rec.Fields[0].(value.Real).V
		c := rec.Fields[1].(value.Real).V
		pt := func(x float64) value.Value {
			return value.NewRecord(value.Real{V: x}, value.Real{V: m*x + c})
		}
		return value.NewRecord(pt(0), pt(1)), nil
	})
	b := New(s, Options{})

	mtA, err := b.Mtype("analytic", "SlopeLine")
	if err != nil {
		t.Fatal(err)
	}
	mtB, err := b.Mtype("geometric", "SegLine")
	if err != nil {
		t.Fatal(err)
	}
	in := value.NewRecord(value.Real{V: 2}, value.Real{V: -1})
	payload, err := wire.Marshal(mtA, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ConvertRaw("analytic", "SlopeLine", "geometric", "SegLine", payload)
	if err != nil {
		t.Fatal(err)
	}
	outV, err := b.Convert("analytic", "SlopeLine", "geometric", "SegLine", in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wire.Marshal(mtB, outV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback bytes % x, tree path % x", got, want)
	}
	st := b.Stats()
	if st.FastConverts != 0 || st.TreeConverts != 1 {
		t.Errorf("fast=%d tree=%d, want 0/1", st.FastConverts, st.TreeConverts)
	}
	if st.XcodeUnsupported != 1 || st.XcodeEntries != 1 {
		t.Errorf("unsupported=%d entries=%d, want 1/1 (refusal cached)", st.XcodeUnsupported, st.XcodeEntries)
	}

	// The refusal is cached: a second conversion attempts no new compile.
	if _, err := b.ConvertRaw("analytic", "SlopeLine", "geometric", "SegLine", payload); err != nil {
		t.Fatal(err)
	}
	if st = b.Stats(); st.XcodeCompiles != 1 {
		t.Errorf("XcodeCompiles = %d after cached refusal, want 1", st.XcodeCompiles)
	}
}

func TestConvertBatchProtocol(t *testing.T) {
	b, c := startDaemon(t)
	if _, _, err := c.Load("x", "c", "ilp32", "typedef struct { float r; int n; } mix;", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Load("y", "c", "ilp32", "typedef struct { int count; float ratio; } pair;", ""); err != nil {
		t.Fatal(err)
	}
	mtA, err := b.Mtype("x", "mix")
	if err != nil {
		t.Fatal(err)
	}
	mtB, err := b.Mtype("y", "pair")
	if err != nil {
		t.Fatal(err)
	}

	const n = 17
	vs := make([]value.Value, n)
	for i := range vs {
		vs[i] = value.NewRecord(value.Real{V: float64(i) + 0.5}, value.NewInt(int64(i)))
	}
	outs, err := c.ConvertBatch("x", "mix", "y", "pair", mtA, mtB, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != n {
		t.Fatalf("batch returned %d items, want %d", len(outs), n)
	}
	for i, out := range outs {
		rec := out.(value.Record)
		if cnt, _ := rec.Fields[0].(value.Int).Int64(); cnt != int64(i) {
			t.Fatalf("item %d: count = %d", i, cnt)
		}
		if r := rec.Fields[1].(value.Real).V; r != float64(i)+0.5 {
			t.Fatalf("item %d: ratio = %v", i, r)
		}
	}
	st := b.Stats()
	if st.FastConverts != n {
		t.Errorf("FastConverts = %d, want %d", st.FastConverts, n)
	}

	// Empty batch round-trips.
	if outs, err := c.ConvertBatchRaw("x", "mix", "y", "pair", nil); err != nil || len(outs) != 0 {
		t.Fatalf("empty batch: %d items, err %v", len(outs), err)
	}

	// A bad item fails the whole batch with its index in the error.
	good, err := wire.Marshal(mtA, vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConvertBatchRaw("x", "mix", "y", "pair", [][]byte{good, good[:2]}); err == nil ||
		!strings.Contains(err.Error(), "item 1") {
		t.Fatalf("bad batch item error = %v", err)
	}

	// Health exposes the transcoder cache occupancy.
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.TranscoderEntries != 1 {
		t.Errorf("TranscoderEntries = %d, want 1", h.TranscoderEntries)
	}
	// And stats round-trip the new counters over the wire.
	local := b.Stats()
	wst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if wst.FastConverts != local.FastConverts || wst.XcodeCompiles != 1 {
		t.Errorf("wire stats fast=%d xcompiles=%d, want %d/1",
			wst.FastConverts, wst.XcodeCompiles, local.FastConverts)
	}
}

func TestBatchFraming(t *testing.T) {
	items := [][]byte{{1, 2, 3}, {}, {0xff}}
	enc := appendBatch(nil, items)
	dec, err := parseBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(items) {
		t.Fatalf("decoded %d items", len(dec))
	}
	for i := range items {
		if !bytes.Equal(dec[i], items[i]) {
			t.Fatalf("item %d: % x != % x", i, dec[i], items[i])
		}
	}
	for _, bad := range [][]byte{
		{},                                 // no count
		{1, 0, 0, 0},                       // count 1, no length
		{1, 0, 0, 0, 9, 0, 0, 0, 1},        // item overruns body
		append(appendBatch(nil, items), 0), // trailing byte
	} {
		if _, err := parseBatch(bad); err == nil {
			t.Fatalf("parseBatch(% x) succeeded", bad)
		}
	}
}

func BenchmarkConvertBatch(b *testing.B) {
	bk := newBroker(Options{})
	if _, _, err := bk.Load("x", "c", "ilp32", "typedef struct { float r; int n; } mix;", ""); err != nil {
		b.Fatal(err)
	}
	if _, _, err := bk.Load("y", "c", "ilp32", "typedef struct { int count; float ratio; } pair;", ""); err != nil {
		b.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	Serve(srv, bk)
	c, err := DialClient(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	mtA, err := bk.Mtype("x", "mix")
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	payloads := make([][]byte, batch)
	for i := range payloads {
		p, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: float64(i)}, value.NewInt(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = p
	}
	// Warm the caches.
	if _, err := c.ConvertBatchRaw("x", "mix", "y", "pair", payloads); err != nil {
		b.Fatal(err)
	}

	b.Run("batch64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.ConvertBatchRaw("x", "mix", "y", "pair", payloads); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range payloads {
				if _, err := c.ConvertRaw("x", "mix", "y", "pair", p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
