// Package broker turns the per-invocation compile pipeline of
// internal/core into a long-running, concurrent stub-compilation service:
// the subsystem that lets one daemon compile a coercion plan once and
// serve conversions for it many times, across many connections.
//
// A Broker wraps a core.Session (which is not safe for concurrent use)
// behind a mutex and three fingerprint-keyed LRU caches:
//
//   - the verdict cache, keyed by the pair of *canonical* digests
//     (stable under Record/Choice child permutation and μ-unrolling), so
//     any two declaration pairs the comparer would relate identically
//     share one compare verdict;
//   - the converter cache, keyed by the pair of *exact* digests, holding
//     the closure-compiled converter and its plan. Exactness matters
//     here: a compiled converter consumes values in declaration order,
//     so record(int, real) and record(real, int) must not share one;
//   - the transcoder cache, also keyed by exact digests, holding the
//     fused CDR-bytes→CDR-bytes transcoder (internal/transcode) that
//     serves raw conversions without building value trees. Pairs the
//     fuser cannot handle cache their refusal, so the tree fallback
//     decision costs one compile attempt, not one per request.
//
// Both caches are content-addressed — the key depends only on the Mtype
// structure — so annotation of a universe needs no invalidation: changed
// lowerings produce new fingerprints and simply stop hitting the old
// entries, which age out of the LRU.
//
// Concurrent requests for the same missing key are deduplicated
// (singleflight): one request compiles, the rest wait for its result, so
// a thundering herd on a cold pair costs one compile. Fills are further
// bounded by a worker semaphore. Per-broker counters (hits, misses,
// compiles, latency, evictions, in-flight) are exposed via Stats.
//
// Register any semantic hooks on the Session before constructing the
// Broker; the hook table is read concurrently during compilation.
package broker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/annotate"
	"repro/internal/cmem"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/plan"
	"repro/internal/value"
)

// Options configures a Broker. Zero values select the defaults.
type Options struct {
	// VerdictCacheSize bounds the compare-verdict LRU (default 4096).
	VerdictCacheSize int
	// ConverterCacheSize bounds the compiled-converter LRU (default 1024).
	ConverterCacheSize int
	// TranscoderCacheSize bounds the compiled wire-transcoder LRU
	// (default 1024). Like the converter cache it is keyed by the pair of
	// exact digests; entries for pairs the transcoder cannot fuse record
	// that fact, so the fallback decision is cached too.
	TranscoderCacheSize int
	// Workers bounds concurrent cache fills — compare runs and converter
	// compilations (default GOMAXPROCS).
	Workers int
	// RequestTimeout bounds each protocol request served through
	// Handler: past it the client receives a deadline error while the
	// underlying work is abandoned to finish (and warm the caches) in
	// the background. 0 disables.
	RequestTimeout time.Duration
	// MaxInFlight bounds protocol requests admitted concurrently through
	// Handler (default 256). A request arriving with the limit reached
	// waits up to AdmitWait for a slot, then is shed with a typed
	// orb.ErrOverloaded instead of queuing unboundedly. Negative
	// disables admission control. Health and stats requests bypass it.
	MaxInFlight int
	// AdmitWait is how long an arriving request may wait for an
	// admission slot before being shed (default 5ms, clamped to
	// RequestTimeout when one is set). Brief waits absorb bursts;
	// anything longer is better spent on a client-side retry after
	// backoff against a hopefully less-loaded moment.
	AdmitWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.VerdictCacheSize <= 0 {
		o.VerdictCacheSize = 4096
	}
	if o.ConverterCacheSize <= 0 {
		o.ConverterCacheSize = 1024
	}
	if o.TranscoderCacheSize <= 0 {
		o.TranscoderCacheSize = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 256
	}
	if o.AdmitWait <= 0 {
		o.AdmitWait = 5 * time.Millisecond
	}
	if o.RequestTimeout > 0 && o.AdmitWait > o.RequestTimeout {
		o.AdmitWait = o.RequestTimeout
	}
	return o
}

// Broker is a concurrent stub-compilation service over one core.Session.
// All methods are safe for concurrent use.
type Broker struct {
	opts Options

	// sess is guarded by sessMu: Session lowering and comparison memoize
	// into shared maps, so every Session call is serialized.
	sessMu sync.Mutex
	sess   *core.Session

	verdicts   *sfCache[*verdictEntry]
	converters *sfCache[*convEntry]
	xcoders    *sfCache[*xcodeEntry]

	// printMemo caches fingerprints per lowered Mtype graph. The session
	// memoizes lowerings per declaration and Annotate replaces them
	// wholesale, so pointer identity is content identity: an annotated
	// declaration lowers to a fresh graph and misses the memo naturally.
	printMu   sync.Mutex
	printMemo map[*mtype.Type]fingerprint.Print

	fillSem chan struct{}

	// admit is the protocol-level admission semaphore (nil when
	// MaxInFlight < 0). Slots are held until the request's work actually
	// finishes — including work that outlives its RequestTimeout in the
	// background — so the cap bounds real load, not just visible load.
	admit chan struct{}

	// srv is the orb server the broker is registered on (set by Serve),
	// giving the health op access to transport-level counters.
	srv atomic.Pointer[orb.Server]

	inFlight  atomic.Int64
	compiles  atomic.Int64
	compares  atomic.Int64
	compareNs atomic.Int64
	compileNs atomic.Int64
	deadlines atomic.Int64
	sheds     atomic.Int64

	// Wire-transcoder data-plane counters: compilations, pairs the
	// transcoder compiler refused (cached fallbacks), and per-request
	// conversions served by each tier.
	xcompiles    atomic.Int64
	xunsupported atomic.Int64
	fastConverts atomic.Int64
	treeConverts atomic.Int64

	// Peer cache-warming state (internal/cluster installs the warmer).
	// warmFills counts cache entries materialized by the warming protocol
	// (pushes received, startup sync) rather than by a client request;
	// warmHits counts request-path cache hits on such entries; peerPulls
	// counts verdict fills answered by the pair's owner instead of a
	// local compare; peerPushes counts fills handed to the warmer for
	// push replication.
	warmMu     sync.RWMutex
	warm       PeerWarmer
	recMu      sync.Mutex
	loadRecs   map[string]LoadRecord
	recipes    map[recipeKey]WarmEntry
	warmFills  atomic.Int64
	warmHits   atomic.Int64
	peerPulls  atomic.Int64
	peerPushes atomic.Int64
}

// verdictEntry is a cached compare outcome, freed of the session-owned
// Match so cached verdicts are plain immutable data. warmed marks
// entries materialized by the peer cache-warming protocol.
type verdictEntry struct {
	relation core.Relation
	steps    int
	explain  string
	warmed   bool
}

// convEntry is a cached compiled converter for one exact pair.
type convEntry struct {
	relation core.Relation
	explain  string
	conv     convert.Converter
	planText string
	warmed   bool
}

// New returns a Broker serving the given session.
func New(sess *core.Session, opts Options) *Broker {
	opts = opts.withDefaults()
	b := &Broker{
		opts:       opts,
		sess:       sess,
		verdicts:   newSFCache[*verdictEntry](opts.VerdictCacheSize),
		converters: newSFCache[*convEntry](opts.ConverterCacheSize),
		xcoders:    newSFCache[*xcodeEntry](opts.TranscoderCacheSize),
		printMemo:  make(map[*mtype.Type]fingerprint.Print),
		fillSem:    make(chan struct{}, opts.Workers),
		loadRecs:   make(map[string]LoadRecord),
		recipes:    make(map[recipeKey]WarmEntry),
	}
	if opts.MaxInFlight > 0 {
		b.admit = make(chan struct{}, opts.MaxInFlight)
	}
	return b
}

// --- declaration management (session passthrough, serialized) ---

// Load parses src in the given language ("c", "java", or "idl") into a
// universe, then applies the optional annotation script. If the universe
// already exists the call is a no-op and existed is true: universes are
// immutable once loaded except through Annotate, and protocol clients
// name universes by content hash to get idempotent loads.
func (b *Broker) Load(universe, lang, model, src, script string) (names []string, existed bool, err error) {
	b.sessMu.Lock()
	defer b.sessMu.Unlock()
	if b.sess.Universe(universe) != nil {
		// Record the sources even for a repeat load: a broker whose
		// universe arrived by other means (or before a restart) regains a
		// shippable record the first time a client re-loads it.
		b.noteLoadRecord(universe, lang, model, src, script)
		names, err := b.sess.DeclNames(universe)
		return names, true, err
	}
	switch lang {
	case "c":
		m := cmem.ILP32
		if model == "lp64" {
			m = cmem.LP64
		}
		err = b.sess.LoadC(universe, src, m)
	case "java":
		err = b.sess.LoadJava(universe, src)
	case "idl":
		err = b.sess.LoadIDL(universe, src)
	case "go":
		err = b.sess.LoadGo(universe, src)
	default:
		err = fmt.Errorf("broker: unknown language %q", lang)
	}
	if err != nil {
		return nil, false, err
	}
	if script != "" {
		if _, err := b.sess.Annotate(universe, script); err != nil {
			return nil, false, err
		}
	}
	b.noteLoadRecord(universe, lang, model, src, script)
	names, err = b.sess.DeclNames(universe)
	return names, false, err
}

// Annotate applies an annotation script to a loaded universe. Cached
// entries for the universe's old lowerings become unreachable (their
// fingerprints change) rather than invalid, so no flush is needed.
func (b *Broker) Annotate(universe, script string) (annotate.ScriptResult, error) {
	b.sessMu.Lock()
	defer b.sessMu.Unlock()
	return b.sess.Annotate(universe, script)
}

// HasUniverse reports whether a universe is loaded.
func (b *Broker) HasUniverse(universe string) bool {
	b.sessMu.Lock()
	defer b.sessMu.Unlock()
	return b.sess.Universe(universe) != nil
}

// DeclNames lists a universe's declarations, sorted.
func (b *Broker) DeclNames(universe string) ([]string, error) {
	b.sessMu.Lock()
	defer b.sessMu.Unlock()
	return b.sess.DeclNames(universe)
}

// Mtype lowers a declaration. The returned graph is immutable and may be
// read concurrently.
func (b *Broker) Mtype(universe, decl string) (*mtype.Type, error) {
	b.sessMu.Lock()
	defer b.sessMu.Unlock()
	return b.sess.Mtype(universe, decl)
}

// prints lowers both declarations (serialized) and fingerprints the
// resulting graphs (outside the session lock: Mtype graphs are immutable
// once lowered).
func (b *Broker) prints(ua, da, ub, db string) (mtA, mtB *mtype.Type, pa, pb fingerprint.Print, err error) {
	b.sessMu.Lock()
	mtA, err = b.sess.Mtype(ua, da)
	if err == nil {
		mtB, err = b.sess.Mtype(ub, db)
	}
	b.sessMu.Unlock()
	if err != nil {
		return nil, nil, fingerprint.Print{}, fingerprint.Print{}, err
	}
	return mtA, mtB, b.printOf(mtA), b.printOf(mtB), nil
}

// printMemoCap bounds the fingerprint memo; entries are tiny, and one per
// distinct lowered declaration suffices.
const printMemoCap = 1 << 16

// printOf fingerprints a lowered graph through the pointer-keyed memo, so
// the warm request path costs a map lookup rather than a hash refinement
// over the whole graph. Racing computations of the same graph are benign
// (the digest is deterministic).
func (b *Broker) printOf(t *mtype.Type) fingerprint.Print {
	b.printMu.Lock()
	p, ok := b.printMemo[t]
	b.printMu.Unlock()
	if ok {
		return p
	}
	p = fingerprint.Of(t)
	b.printMu.Lock()
	if len(b.printMemo) >= printMemoCap {
		for k := range b.printMemo {
			delete(b.printMemo, k)
			break
		}
	}
	b.printMemo[t] = p
	b.printMu.Unlock()
	return p
}

// Verdict is a broker compare result.
type Verdict struct {
	Relation core.Relation
	// Steps is the comparison step count of the run that produced the
	// cached verdict (0 is possible only for errors).
	Steps int
	// Explain holds the mismatch diagnosis when Relation is RelNone.
	Explain string
	// Cached reports whether the verdict came from the cache rather than
	// a compare run this request executed or waited on.
	Cached bool
}

// Compare decides the relation between two loaded declarations, serving
// from the canonical-fingerprint verdict cache when possible.
func (b *Broker) Compare(ua, da, ub, db string) (Verdict, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)
	_, _, pa, pb, err := b.prints(ua, da, ub, db)
	if err != nil {
		return Verdict{}, err
	}
	key := fingerprint.Pair(pa.Canonical, pb.Canonical)
	ent, cached, err := b.verdicts.do(key, func() (*verdictEntry, error) {
		// Before paying for a compare, ask the pair's ring owner: a
		// verdict is plain data, so a peer's cached result transfers the
		// computation outright.
		if w := b.peerWarmer(); w != nil {
			if rel, steps, explain, ok := w.PullVerdict(ua, da, ub, db); ok {
				b.peerPulls.Add(1)
				e := &verdictEntry{relation: rel, steps: steps, explain: explain, warmed: true}
				b.noteRecipe(KindVerdict, key, ua, da, ub, db, e)
				return e, nil
			}
		}
		b.fillSem <- struct{}{}
		defer func() { <-b.fillSem }()
		start := time.Now()
		v, err := b.compareLocked(ua, da, ub, db)
		b.compareNs.Add(time.Since(start).Nanoseconds())
		b.compares.Add(1)
		if err != nil {
			return nil, err
		}
		e := &verdictEntry{relation: v.Relation, steps: v.Steps, explain: v.Explain}
		b.noteRecipe(KindVerdict, key, ua, da, ub, db, e)
		b.pushAfterFill(KindVerdict, ua, da, ub, db)
		return e, nil
	})
	if err != nil {
		return Verdict{}, err
	}
	if cached && ent.warmed {
		b.warmHits.Add(1)
	}
	return Verdict{Relation: ent.relation, Steps: ent.steps, Explain: ent.explain, Cached: cached}, nil
}

func (b *Broker) compareLocked(ua, da, ub, db string) (*core.Verdict, error) {
	b.sessMu.Lock()
	defer b.sessMu.Unlock()
	return b.sess.Compare(ua, da, ub, db)
}

// converter returns the cached compiled converter entry for the exact
// pair, compiling it on a miss. warm marks a fill performed by the peer
// cache-warming protocol rather than a client request: the entry is
// flagged, counted as a warm fill, and not pushed onward.
func (b *Broker) converter(ua, da, ub, db string, warm bool) (*convEntry, bool, error) {
	_, _, pa, pb, err := b.prints(ua, da, ub, db)
	if err != nil {
		return nil, false, err
	}
	key := fingerprint.Pair(pa.Exact, pb.Exact)
	return b.converters.do(key, func() (*convEntry, error) {
		b.fillSem <- struct{}{}
		defer func() { <-b.fillSem }()
		start := time.Now()
		defer func() {
			b.compileNs.Add(time.Since(start).Nanoseconds())
			b.compiles.Add(1)
		}()
		v, err := b.compareLocked(ua, da, ub, db)
		if err != nil {
			return nil, err
		}
		ent := &convEntry{relation: v.Relation, explain: v.Explain, warmed: warm}
		if v.Relation != core.RelNone {
			// Plan building and closure compilation read only the (now
			// immutable) match and the session's hook table, so they run
			// outside the session lock, bounded by the fill semaphore.
			p, conv, err := b.buildConverter(v)
			if err != nil {
				return nil, err
			}
			ent.conv = conv
			ent.planText = p.String()
		}
		b.noteRecipe(KindConverter, key, ua, da, ub, db, nil)
		if warm {
			b.warmFills.Add(1)
		} else {
			b.pushAfterFill(KindConverter, ua, da, ub, db)
		}
		return ent, nil
	})
}

func (b *Broker) buildConverter(v *core.Verdict) (*plan.Plan, convert.Converter, error) {
	return b.sess.BuildConverter(v)
}

// Convert converts a value of declaration A into one of declaration B
// using the cached compiled converter. The pair must be equivalent or
// A <: B; for a B <: A pair, swap the arguments.
func (b *Broker) Convert(ua, da, ub, db string, v value.Value) (value.Value, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)
	ent, cached, err := b.converter(ua, da, ub, db, false)
	if err != nil {
		return nil, err
	}
	if cached && ent.warmed {
		b.warmHits.Add(1)
	}
	switch ent.relation {
	case core.RelEquivalent, core.RelSubtypeAB:
		return ent.conv.Convert(v)
	case core.RelSubtypeBA:
		return nil, fmt.Errorf("broker: %s/%s only converts from %s/%s (B is the subtype); swap the pair", ua, da, ub, db)
	default:
		return nil, fmt.Errorf("broker: declarations do not match:\n%s", ent.explain)
	}
}

// PlanText returns the rendered coercion plan for the pair (compiling it
// if needed) — the daemon's window into what a conversion will do.
func (b *Broker) PlanText(ua, da, ub, db string) (string, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)
	ent, cached, err := b.converter(ua, da, ub, db, false)
	if err != nil {
		return "", err
	}
	if cached && ent.warmed {
		b.warmHits.Add(1)
	}
	if ent.relation == core.RelNone {
		return "", fmt.Errorf("broker: declarations do not match:\n%s", ent.explain)
	}
	return ent.planText, nil
}

// Stats is a point-in-time snapshot of the broker's counters.
type Stats struct {
	// Verdict cache.
	CompareHits, CompareMisses, CompareCoalesced int64
	CompareRuns                                  int64 // compare executions
	CompareTotal                                 time.Duration
	VerdictEntries                               int
	// Converter cache.
	ConvertHits, ConvertMisses, ConvertCoalesced int64
	Compiles                                     int64 // converter compilations
	CompileTotal                                 time.Duration
	ConverterEntries                             int
	// Wire-transcoder cache and data plane.
	XcodeHits, XcodeMisses, XcodeCoalesced int64
	XcodeCompiles                          int64 // transcoder compilations
	XcodeUnsupported                       int64 // pairs refused by the fuser (cached fallbacks)
	XcodeEntries                           int
	FastConverts                           int64 // conversions served wire-to-wire
	TreeConverts                           int64 // conversions served decode→convert→encode
	// Peer cache-warming (all zero on a standalone daemon).
	WarmFills  int64 // entries materialized by pushes received / startup sync
	WarmHits   int64 // request-path cache hits on warmed entries
	PeerPulls  int64 // verdict fills answered by the pair's ring owner
	PeerPushes int64 // fills handed to the warmer for push replication
	// Shared.
	Evictions int64
	InFlight  int64
	// DeadlineExceeded counts protocol requests that outlived the
	// server-side RequestTimeout.
	DeadlineExceeded int64
	// Sheds counts protocol requests refused by admission control
	// (MaxInFlight reached and no slot freed within AdmitWait).
	Sheds int64
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	return Stats{
		CompareHits:      b.verdicts.hits.Load(),
		CompareMisses:    b.verdicts.misses.Load(),
		CompareCoalesced: b.verdicts.coalesced.Load(),
		CompareRuns:      b.compares.Load(),
		CompareTotal:     time.Duration(b.compareNs.Load()),
		VerdictEntries:   b.verdicts.len(),

		ConvertHits:      b.converters.hits.Load(),
		ConvertMisses:    b.converters.misses.Load(),
		ConvertCoalesced: b.converters.coalesced.Load(),
		Compiles:         b.compiles.Load(),
		CompileTotal:     time.Duration(b.compileNs.Load()),
		ConverterEntries: b.converters.len(),

		XcodeHits:        b.xcoders.hits.Load(),
		XcodeMisses:      b.xcoders.misses.Load(),
		XcodeCoalesced:   b.xcoders.coalesced.Load(),
		XcodeCompiles:    b.xcompiles.Load(),
		XcodeUnsupported: b.xunsupported.Load(),
		XcodeEntries:     b.xcoders.len(),
		FastConverts:     b.fastConverts.Load(),
		TreeConverts:     b.treeConverts.Load(),

		WarmFills:  b.warmFills.Load(),
		WarmHits:   b.warmHits.Load(),
		PeerPulls:  b.peerPulls.Load(),
		PeerPushes: b.peerPushes.Load(),

		Evictions:        b.verdicts.evictions.Load() + b.converters.evictions.Load() + b.xcoders.evictions.Load(),
		InFlight:         b.inFlight.Load(),
		DeadlineExceeded: b.deadlines.Load(),
		Sheds:            b.sheds.Load(),
	}
}

// Health is the daemon's readiness and load snapshot, served without
// admission control so it answers even when the daemon is saturated.
type Health struct {
	// Ready is false while the serving orb server is draining or closed.
	Ready bool
	// InFlight is the number of admitted protocol requests currently
	// holding admission slots (0 when admission control is disabled).
	InFlight int64
	// MaxInFlight is the admission cap (0 when disabled).
	MaxInFlight int
	// Sheds counts requests refused by admission control.
	Sheds int64
	// ConnSheds counts requests refused by the orb per-connection
	// concurrency cap.
	ConnSheds int64
	// Panics counts handler panics the orb server recovered.
	Panics int64
	// Expired counts requests shed by the orb server because their
	// propagated deadline budget was already spent before dispatch, plus
	// in-flight requests answered with a typed expiry.
	Expired int64
	// Canceled counts in-flight requests aborted by client cancel
	// frames.
	Canceled int64
	// TranscoderEntries is the number of compiled wire transcoders (and
	// cached fallback decisions) resident in the transcoder LRU.
	TranscoderEntries int64
	// Peers is the number of other daemons in this daemon's cluster (0
	// when running standalone).
	Peers int64
	// HeapBytes is the process's in-use heap (runtime HeapInuse);
	// GCPauseNs the cumulative stop-the-world GC pause time; NumGC the
	// completed GC cycle count. Load harnesses (cmd/mbirdload) record
	// the deltas of these across a run to attribute GC pressure to the
	// request path.
	HeapBytes int64
	GCPauseNs int64
	NumGC     int64
}

// memSnapshot fills the runtime memory/GC telemetry fields shared by
// the broker's and gateway's health snapshots.
func memSnapshot(heap, pause, numGC *int64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	*heap = int64(m.HeapInuse)
	*pause = int64(m.PauseTotalNs)
	*numGC = int64(m.NumGC)
}

// Health returns the daemon's readiness and load snapshot.
func (b *Broker) Health() Health {
	h := Health{Ready: true, Sheds: b.sheds.Load(), TranscoderEntries: int64(b.xcoders.len())}
	memSnapshot(&h.HeapBytes, &h.GCPauseNs, &h.NumGC)
	if w := b.peerWarmer(); w != nil {
		h.Peers = int64(w.Peers())
	}
	if b.admit != nil {
		h.InFlight = int64(len(b.admit))
		h.MaxInFlight = cap(b.admit)
	}
	if srv := b.srv.Load(); srv != nil {
		st := srv.Stats()
		h.ConnSheds = st.Shed
		h.Panics = st.Panics
		h.Expired = st.Expired
		h.Canceled = st.Canceled
		h.Ready = !srv.Draining()
	}
	return h
}
