package broker

import (
	"testing"

	"repro/internal/testutil"
)

// TestCompareWarmAllocs pins the allocation ceiling of a warm compare:
// with the root lowering memoized, the fingerprints memoized by graph
// pointer, and the verdict served from cache, a repeat compare is a few
// map probes. A regression here usually means a memo started missing
// (fresh graphs defeat the pointer-keyed fingerprint memo) and the full
// lower-and-refine pipeline is silently back on the hot path.
func TestCompareWarmAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float r; int n; } mix;")
	loadC(t, b, "y", "typedef struct { int count; float ratio; } pair;")
	if _, err := b.Compare("x", "mix", "y", "pair"); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		v, err := b.Compare("x", "mix", "y", "pair")
		if err != nil {
			t.Fatal(err)
		}
		if !v.Cached {
			t.Fatal("warm compare missed the verdict cache")
		}
	})
	const ceiling = 5
	if avg > ceiling {
		t.Fatalf("warm compare allocates %.1f/op, ceiling %d", avg, ceiling)
	}
}
