package broker

// OpConvertStream: the convert op over orb stream frames, for payloads
// that should not be buffered whole on either side. The request stream
// carries a u32 header length, the CDR pairReqT header (uA, declA, uB,
// declB), then the raw CDR payload of A's Mtype in arbitrary chunk
// splits; the reply stream carries the CDR payload of B's Mtype. Pairs
// whose fused transcoder has a streamable sequence root convert
// chunk-at-a-time in constant memory through internal/stream; fused
// pairs with other roots buffer inside the engine under its cap; tree-
// tier pairs buffer here and take the ordinary convert path. Either
// buffered fallback fails typed (stream.ErrTooLarge) past the cap.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/proto"
	"repro/internal/stream"
)

// OpConvertStream is the streaming convert op (stream frames only; a
// buffered request for this op is an error).
const OpConvertStream uint32 = 9

// maxStreamHeader bounds the pairReqT header of a streamed convert —
// universe and declaration names, not payload, so 1 MiB is generous.
const maxStreamHeader = 1 << 20

// streamHandler serves OpConvertStream on an orb stream. Admission
// control applies to the whole stream (it is one admitted request, like
// a batch); the server RequestTimeout does not — a stream's duration is
// governed by the caller's budget, which rides the open frame.
func streamHandler(b *Broker) orb.StreamHandler {
	return func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		if op != OpConvertStream {
			return fmt.Errorf("broker: unknown stream op %d", op)
		}
		release, err := b.admitRequest()
		if err != nil {
			return err
		}
		defer release()
		b.inFlight.Add(1)
		defer b.inFlight.Add(-1)

		ua, da, ub, db, err := readStreamHeader(in)
		if err != nil {
			return err
		}
		ent, _, err := b.transcoder(ua, da, ub, db, false)
		if err != nil {
			return err
		}
		switch ent.relation {
		case core.RelEquivalent, core.RelSubtypeAB:
		case core.RelSubtypeBA:
			return fmt.Errorf("broker: %s/%s only converts from %s/%s (B is the subtype); swap the pair", ua, da, ub, db)
		default:
			return fmt.Errorf("broker: declarations do not match:\n%s", ent.explain)
		}
		if ent.xc == nil {
			// Tree tier: no bytes-to-bytes program exists, so the payload
			// buffers (capped) and converts through the value tree.
			payload, err := readAllStream(in, stream.DefaultMaxBuffer)
			if err != nil {
				return err
			}
			res, err := b.convertRaw(nil, ua, da, ub, db, payload)
			if err != nil {
				return err
			}
			_, err = out.Write(res)
			return err
		}

		eng := stream.New(ent.xc, stream.Options{})
		defer eng.Release()
		buf := make([]byte, 64<<10)
		for {
			n, rerr := in.Read(buf)
			if n > 0 {
				if err := eng.Push(buf[:n]); err != nil {
					return err
				}
				if o := eng.Take(); len(o) > 0 {
					if _, err := out.Write(o); err != nil {
						return err
					}
				}
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return rerr
			}
		}
		tail, err := eng.Finish()
		if err != nil {
			return err
		}
		if len(tail) > 0 {
			if _, err := out.Write(tail); err != nil {
				return err
			}
		}
		b.fastConverts.Add(1)
		return nil
	}
}

// readStreamHeader decodes the u32-length-prefixed pairReqT header from
// the front of a convert stream.
func readStreamHeader(in *orb.StreamReader) (ua, da, ub, db string, err error) {
	var lenb [4]byte
	if _, err = io.ReadFull(in, lenb[:]); err != nil {
		return "", "", "", "", fmt.Errorf("broker: stream header length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n == 0 || n > maxStreamHeader {
		return "", "", "", "", fmt.Errorf("broker: stream header of %d bytes", n)
	}
	hdr := make([]byte, n)
	if _, err = io.ReadFull(in, hdr); err != nil {
		return "", "", "", "", fmt.Errorf("broker: stream header: %w", err)
	}
	args, err := proto.UnmarshalStrings(pairReqT, hdr, 4)
	if err != nil {
		return "", "", "", "", fmt.Errorf("broker: stream header: %w", err)
	}
	return args[0], args[1], args[2], args[3], nil
}

// readAllStream buffers a stream to EOF, failing typed past max bytes.
func readAllStream(in *orb.StreamReader, max int) ([]byte, error) {
	var buf []byte
	tmp := make([]byte, 64<<10)
	for {
		n, err := in.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if len(buf) > max {
			return nil, fmt.Errorf("%w: tree-tier pair over %d bytes (cap %d)", stream.ErrTooLarge, len(buf), max)
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// ErrNoStreamTransport is returned by ConvertStream when the client's
// transport cannot open orb streams.
var ErrNoStreamTransport = errors.New("broker: transport does not support streaming")

// streamOpener is satisfied by *orb.Client.
type streamOpener interface {
	OpenStream(ctx context.Context, key string, op uint32) (*orb.StreamCall, error)
}

// pooledStreamOpener is satisfied by *resil.Client (and the cluster
// client's per-member pools).
type pooledStreamOpener interface {
	OpenStream(ctx context.Context, key string, op uint32) (*orb.StreamCall, func(error), error)
}

// ConvertStream converts a CDR payload of declaration A read from in
// into a CDR payload of declaration B written to out, streaming both
// legs so neither endpoint holds the whole value. It returns the bytes
// written to out.
func (c *Client) ConvertStream(ua, da, ub, db string, in io.Reader, out io.Writer) (int64, error) {
	return c.ConvertStreamContext(context.Background(), ua, da, ub, db, in, out)
}

// ConvertStreamContext is ConvertStream bounded by a context.
func (c *Client) ConvertStreamContext(ctx context.Context, ua, da, ub, db string, in io.Reader, out io.Writer) (written int64, err error) {
	var sc *orb.StreamCall
	done := func(error) {}
	switch t := c.t.(type) {
	case streamOpener:
		sc, err = t.OpenStream(ctx, ObjectKey, OpConvertStream)
	case pooledStreamOpener:
		sc, done, err = t.OpenStream(ctx, ObjectKey, OpConvertStream)
	default:
		return 0, ErrNoStreamTransport
	}
	if err != nil {
		return 0, err
	}
	defer func() { done(err) }()
	defer func() { _ = sc.Close() }()

	hdr, err := proto.MarshalStrings(pairReqT, ua, da, ub, db)
	if err != nil {
		return 0, err
	}
	// The legs must run concurrently: the broker emits reply chunks while
	// it is still consuming the request, so a caller that wrote the whole
	// request before reading would deadlock against flow control once the
	// converted output outgrows the reply window.
	werr := make(chan error, 1)
	go func() {
		var lenb [4]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(hdr)))
		if _, err := sc.Write(lenb[:]); err != nil {
			werr <- err
			return
		}
		if _, err := sc.Write(hdr); err != nil {
			werr <- err
			return
		}
		buf := make([]byte, 256<<10)
		if _, err := io.CopyBuffer(sc, in, buf); err != nil {
			werr <- err
			return
		}
		werr <- sc.CloseSend()
	}()
	buf := make([]byte, 256<<10)
	written, rerr := io.CopyBuffer(out, sc, buf)
	if rerr != nil {
		// The write leg fails alongside (the stream is dead); its result
		// must still be collected so the goroutine never leaks.
		<-werr
		return written, rerr
	}
	err = <-werr
	return written, err
}
