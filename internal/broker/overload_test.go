package broker

import (
	"errors"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/resil"
)

const overloadSrc = "typedef struct { int count; float ratio; } pair;"

// fillAdmission occupies every admission slot directly (tests live in
// the broker package), returning a release for them all.
func fillAdmission(t *testing.T, b *Broker) (release func()) {
	t.Helper()
	n := cap(b.admit)
	for i := 0; i < n; i++ {
		select {
		case b.admit <- struct{}{}:
		default:
			t.Fatal("admission semaphore already full")
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-b.admit
		}
	}
}

// TestOverloadShedTyped saturates a MaxInFlight=1 broker and asserts the
// next request is shed with the typed orb.ErrOverloaded, the shed
// counters advance, and the daemon serves again once capacity frees.
func TestOverloadShedTyped(t *testing.T) {
	b, c := startDaemonOpts(t, Options{MaxInFlight: 1, AdmitWait: time.Millisecond})
	if _, _, err := c.Load("u", "c", "ilp32", overloadSrc, ""); err != nil {
		t.Fatal(err)
	}

	release := fillAdmission(t, b)
	_, err := c.Compare("u", "pair", "u", "pair")
	if !errors.Is(err, orb.ErrOverloaded) {
		t.Fatalf("err = %v, want orb.ErrOverloaded", err)
	}
	if st := b.Stats(); st.Sheds != 1 {
		t.Errorf("Sheds = %d, want 1", st.Sheds)
	}

	// Health answers even at full load (it bypasses admission) and
	// reports the saturation.
	h, err := c.Health()
	if err != nil {
		t.Fatalf("health under load: %v", err)
	}
	if !h.Ready || h.InFlight != 1 || h.MaxInFlight != 1 || h.Sheds != 1 {
		t.Errorf("health = %+v", h)
	}

	release()
	if v, err := c.Compare("u", "pair", "u", "pair"); err != nil {
		t.Fatalf("post-shed compare: %+v, %v", v, err)
	}
	if h, err := c.Health(); err != nil || h.InFlight != 0 {
		t.Fatalf("drained health = %+v, %v", h, err)
	}
}

// TestOverloadRetriedByResil wires the resilient transport against a
// saturated broker: the shed must be classified retryable, backed off,
// and the call must succeed once the slot frees — without the shed
// reply poisoning the pooled connection.
func TestOverloadRetriedByResil(t *testing.T) {
	b := newBroker(Options{MaxInFlight: 1, AdmitWait: time.Millisecond})
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	Serve(srv, b)

	rc := resil.New(srv.Addr(), resil.Options{
		MaxAttempts: 8,
		BackoffBase: 5 * time.Millisecond,
	})
	c := NewTransportClient(rc)
	t.Cleanup(func() { c.Close() })

	if _, _, err := c.Load("u", "c", "ilp32", overloadSrc, ""); err != nil {
		t.Fatal(err)
	}

	release := fillAdmission(t, b)
	go func() {
		time.Sleep(20 * time.Millisecond)
		release()
	}()
	if _, err := c.Compare("u", "pair", "u", "pair"); err != nil {
		t.Fatalf("compare through overload: %v", err)
	}
	st := rc.Stats()
	if st.Overloads == 0 || st.Retries == 0 {
		t.Errorf("resil stats = %+v, want overload retries recorded", st)
	}
	if st.Discards != 0 {
		t.Errorf("Discards = %d: shed replies must not condemn the connection", st.Discards)
	}
	if b.Stats().Sheds == 0 {
		t.Error("broker recorded no sheds")
	}
}

// TestAdmitUnbounded asserts negative MaxInFlight disables admission
// control entirely.
func TestAdmitUnbounded(t *testing.T) {
	b, c := startDaemonOpts(t, Options{MaxInFlight: -1})
	if b.admit != nil {
		t.Fatal("admission semaphore allocated despite MaxInFlight < 0")
	}
	if _, _, err := c.Load("u", "c", "ilp32", overloadSrc, ""); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health()
	if err != nil || !h.Ready || h.MaxInFlight != 0 {
		t.Fatalf("health = %+v, %v", h, err)
	}
}
