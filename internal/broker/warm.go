// Peer cache-warming hooks: the broker side of the cluster protocol.
//
// Every broker cache entry is content-addressed, so an entry computed on
// one daemon is valid on every other — there is nothing to invalidate,
// only work to avoid repeating. Two kinds of state cross the wire:
//
//   - verdicts are plain data (relation, steps, diagnosis) and transfer
//     directly: a daemon that misses locally can adopt the owner's
//     cached verdict without running the compare;
//   - compiled converters and transcoders are closures over lowered
//     Mtype graphs and cannot be serialized. They warm by *recipe*: the
//     broker retains the (lang, model, source, script) record of every
//     universe it loads, and a warm entry names its pair plus those
//     records, so the receiver can reload the universes (idempotent —
//     clients name universes by content hash) and recompile off the
//     request path.
//
// The cluster layer (internal/cluster) implements PeerWarmer and
// installs itself with SetWarmer; the broker stays ignorant of ring
// topology and peer transport. Broker → warmer: PullVerdict on a verdict
// miss, PushCompiled after a request-path fill. Warmer → broker: the
// Warm* methods below, driven by pushes received and by startup sync.
package broker

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fingerprint"
)

// Warm entry kinds.
const (
	// KindVerdict is a compare verdict: plain data, transferred directly.
	KindVerdict = "verdict"
	// KindConverter is a compiled tree converter: warmed by recompiling
	// from the pair's recipe.
	KindConverter = "converter"
	// KindTranscoder is a compiled wire transcoder (or its cached
	// refusal): warmed by recompiling from the pair's recipe.
	KindTranscoder = "transcoder"
)

// PeerWarmer is the hook a cluster layer installs to warm caches across
// daemons. Implementations must be safe for concurrent use and must not
// block: PullVerdict is called on the request path (bound it with a
// short timeout and fail open), and PushCompiled is called inside cache
// fills (hand the work to a background queue).
type PeerWarmer interface {
	// PullVerdict asks the pair's ring owner for a cached verdict,
	// reporting ok=false on any miss, timeout, or transport failure.
	PullVerdict(ua, da, ub, db string) (rel core.Relation, steps int, explain string, ok bool)
	// PushCompiled announces a request-path fill of the given kind so the
	// warmer can replicate the entry to the pair's ring successors.
	PushCompiled(kind, ua, da, ub, db string)
	// Peers reports the number of other daemons in the cluster.
	Peers() int
}

// SetWarmer installs (or, with nil, removes) the peer warmer.
func (b *Broker) SetWarmer(w PeerWarmer) {
	b.warmMu.Lock()
	b.warm = w
	b.warmMu.Unlock()
}

func (b *Broker) peerWarmer() PeerWarmer {
	b.warmMu.RLock()
	defer b.warmMu.RUnlock()
	return b.warm
}

// pushAfterFill hands a freshly filled entry to the warmer for push
// replication (counted whether or not the sends later succeed — the
// warmer tracks transport outcomes itself).
func (b *Broker) pushAfterFill(kind, ua, da, ub, db string) {
	if w := b.peerWarmer(); w != nil {
		b.peerPushes.Add(1)
		w.PushCompiled(kind, ua, da, ub, db)
	}
}

// LoadRecord is the shippable description of one loaded universe — the
// exact arguments a peer must replay through Load to own the same
// declarations. Universe names are content hashes on the client side, so
// replaying a record is idempotent.
type LoadRecord struct {
	Universe, Lang, Model, Source, Script string
}

// loadRecCap bounds retained load records; a slot is reclaimed
// arbitrarily past it (records are advisory — losing one only makes the
// affected entries unwarmable, never incorrect).
const loadRecCap = 1024

// noteLoadRecord retains the sources of a loaded universe for warm
// pushes. Called with sessMu held.
func (b *Broker) noteLoadRecord(universe, lang, model, src, script string) {
	b.recMu.Lock()
	defer b.recMu.Unlock()
	if _, ok := b.loadRecs[universe]; !ok && len(b.loadRecs) >= loadRecCap {
		for k := range b.loadRecs {
			delete(b.loadRecs, k)
			break
		}
	}
	b.loadRecs[universe] = LoadRecord{Universe: universe, Lang: lang, Model: model, Source: src, Script: script}
}

// LoadRecord returns the retained sources of a universe, if the broker
// saw them arrive through Load.
func (b *Broker) LoadRecord(universe string) (LoadRecord, bool) {
	b.recMu.Lock()
	defer b.recMu.Unlock()
	r, ok := b.loadRecs[universe]
	return r, ok
}

// WarmEntry describes one cache entry in warmable form: its kind, the
// pair of declaration names that (re)produce it, and — for verdicts —
// the verdict data itself, so list-based sync can transfer verdicts
// without a compare.
type WarmEntry struct {
	Kind           string
	UA, DA, UB, DB string
	Relation       core.Relation
	Steps          int
	Explain        string
}

type recipeKey struct {
	kind string
	key  fingerprint.PairKey
}

// recipeCap bounds the recipe book; like load records, recipes are
// advisory and a dropped one only narrows what can be warmed.
const recipeCap = 8192

// noteRecipe records how a cache entry was produced. ve carries the
// verdict data for KindVerdict entries (nil otherwise).
func (b *Broker) noteRecipe(kind string, key fingerprint.PairKey, ua, da, ub, db string, ve *verdictEntry) {
	e := WarmEntry{Kind: kind, UA: ua, DA: da, UB: ub, DB: db}
	if ve != nil {
		e.Relation = ve.relation
		e.Steps = ve.steps
		e.Explain = ve.explain
	}
	rk := recipeKey{kind: kind, key: key}
	b.recMu.Lock()
	defer b.recMu.Unlock()
	if _, ok := b.recipes[rk]; !ok && len(b.recipes) >= recipeCap {
		for k := range b.recipes {
			delete(b.recipes, k)
			break
		}
	}
	b.recipes[rk] = e
}

// WarmEntries snapshots up to max warmable entries together with the
// load records their universes need, for list-based sync (a restarted
// peer pulling the fleet's warm state). Entries whose universes lack a
// retained record are skipped — they could not be replayed remotely.
func (b *Broker) WarmEntries(max int) ([]LoadRecord, []WarmEntry) {
	b.recMu.Lock()
	defer b.recMu.Unlock()
	var entries []WarmEntry
	recs := make(map[string]LoadRecord)
	for _, e := range b.recipes {
		if max > 0 && len(entries) >= max {
			break
		}
		ra, okA := b.loadRecs[e.UA]
		rb, okB := b.loadRecs[e.UB]
		if !okA || !okB {
			continue
		}
		recs[e.UA] = ra
		recs[e.UB] = rb
		entries = append(entries, e)
	}
	out := make([]LoadRecord, 0, len(recs))
	for _, r := range recs {
		out = append(out, r)
	}
	return out, entries
}

// PeekVerdict is the cache-only verdict read peers use to answer pulls:
// no compare ever runs, and the hit/miss counters are untouched, so
// serving a peer never skews the local serving statistics.
func (b *Broker) PeekVerdict(ua, da, ub, db string) (Verdict, bool) {
	_, _, pa, pb, err := b.prints(ua, da, ub, db)
	if err != nil {
		return Verdict{}, false
	}
	ent, ok := b.verdicts.peek(fingerprint.Pair(pa.Canonical, pb.Canonical))
	if !ok {
		return Verdict{}, false
	}
	return Verdict{Relation: ent.relation, Steps: ent.steps, Explain: ent.explain, Cached: true}, true
}

// WarmVerdict adopts a verdict computed elsewhere, inserting it directly
// into the verdict cache (declined when the key is already present or
// filling). Both universes must be loaded. Reports whether the insert
// happened.
func (b *Broker) WarmVerdict(ua, da, ub, db string, rel core.Relation, steps int, explain string) (bool, error) {
	_, _, pa, pb, err := b.prints(ua, da, ub, db)
	if err != nil {
		return false, fmt.Errorf("broker: warm verdict: %w", err)
	}
	key := fingerprint.Pair(pa.Canonical, pb.Canonical)
	ent := &verdictEntry{relation: rel, steps: steps, explain: explain, warmed: true}
	if !b.verdicts.putIfAbsent(key, ent) {
		return false, nil
	}
	b.warmFills.Add(1)
	b.noteRecipe(KindVerdict, key, ua, da, ub, db, ent)
	return true, nil
}

// WarmConverter compiles the pair's tree converter off the request path
// (a no-op when already cached). The compile itself still runs locally —
// converters are closures and cannot cross the wire — but it runs now,
// on the warming path, instead of later, under a client's latency.
func (b *Broker) WarmConverter(ua, da, ub, db string) error {
	_, _, err := b.converter(ua, da, ub, db, true)
	return err
}

// WarmTranscoder compiles the pair's wire transcoder (or caches its
// refusal) off the request path; a no-op when already cached.
func (b *Broker) WarmTranscoder(ua, da, ub, db string) error {
	_, _, err := b.transcoder(ua, da, ub, db, true)
	return err
}
