package broker

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/fingerprint"
)

// sfCache is a fingerprint-pair-keyed LRU cache with singleflight fill:
// when N goroutines miss on the same key concurrently, one runs the fill
// function and the rest wait for its result. Fill errors are not cached —
// the next request retries.
type sfCache[V any] struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[fingerprint.PairKey]*list.Element
	inflight map[fingerprint.PairKey]*flight[V]

	hits, misses, coalesced, evictions atomic.Int64
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type lruEntry[V any] struct {
	key fingerprint.PairKey
	val V
}

func newSFCache[V any](capacity int) *sfCache[V] {
	return &sfCache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[fingerprint.PairKey]*list.Element),
		inflight: make(map[fingerprint.PairKey]*flight[V]),
	}
}

// get returns a cached value without filling.
func (c *sfCache[V]) get(key fingerprint.PairKey) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// do returns the cached value for key, filling it via fill on a miss.
// cached reports whether the value came from the cache (true) rather than
// from a fill this call ran or waited on (false).
func (c *sfCache[V]) do(key fingerprint.PairKey, fill func() (V, error)) (val V, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*lruEntry[V]).val, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-fl.done
		return fl.val, false, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	c.misses.Add(1)

	fl.val, fl.err = fill()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.add(key, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, false, fl.err
}

// peek returns a cached value without promoting it or touching the
// hit/miss counters — the read path for peers inspecting the cache, kept
// invisible to the serving statistics.
func (c *sfCache[V]) peek(key fingerprint.PairKey) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// putIfAbsent inserts a value produced outside the fill path (a warm
// entry pushed by a peer). It declines when the key is already cached or
// a fill for it is in flight — the local fill owns the slot — and
// reports whether the insert happened.
func (c *sfCache[V]) putIfAbsent(key fingerprint.PairKey, val V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return false
	}
	if _, ok := c.inflight[key]; ok {
		return false
	}
	c.add(key, val)
	return true
}

// add inserts under c.mu, evicting from the tail past capacity.
func (c *sfCache[V]) add(key fingerprint.PairKey, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruEntry[V]).key)
		c.evictions.Add(1)
	}
}

// len returns the number of cached entries.
func (c *sfCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
