package broker

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/plan"
	"repro/internal/transcode"
	"repro/internal/wire"
)

// xcodeEntry is a cached wire-transcoder outcome for one exact pair: the
// compiled transcoder when the fuser supports the plan, or the recorded
// refusal when it does not (xc nil, unsupported set), so the per-request
// fallback decision is a cache hit either way.
type xcodeEntry struct {
	relation    core.Relation
	explain     string
	xc          *transcode.Transcoder
	unsupported string
	warmed      bool
}

// transcoder returns the cached wire-transcoder entry for the exact
// pair, attempting compilation on a miss. A compile refused with
// transcode.ErrUnsupported is cached as a fallback entry, not returned
// as an error. warm marks a fill performed by the peer cache-warming
// protocol: flagged, counted as a warm fill, not pushed onward.
func (b *Broker) transcoder(ua, da, ub, db string, warm bool) (*xcodeEntry, bool, error) {
	_, _, pa, pb, err := b.prints(ua, da, ub, db)
	if err != nil {
		return nil, false, err
	}
	key := fingerprint.Pair(pa.Exact, pb.Exact)
	return b.xcoders.do(key, func() (*xcodeEntry, error) {
		b.fillSem <- struct{}{}
		defer func() { <-b.fillSem }()
		start := time.Now()
		defer func() {
			b.compileNs.Add(time.Since(start).Nanoseconds())
			b.xcompiles.Add(1)
		}()
		done := func(e *xcodeEntry) *xcodeEntry {
			e.warmed = warm
			b.noteRecipe(KindTranscoder, key, ua, da, ub, db, nil)
			if warm {
				b.warmFills.Add(1)
			} else {
				b.pushAfterFill(KindTranscoder, ua, da, ub, db)
			}
			return e
		}
		v, err := b.compareLocked(ua, da, ub, db)
		if err != nil {
			return nil, err
		}
		switch v.Relation {
		case core.RelNone:
			return done(&xcodeEntry{relation: v.Relation, explain: v.Explain}), nil
		case core.RelSubtypeBA:
			// Convert only runs A→B; no transcoder to build in this
			// direction, and the relation itself is what callers need.
			return done(&xcodeEntry{relation: v.Relation}), nil
		}
		p, err := plan.Build(v.Match)
		if err != nil {
			return nil, err
		}
		xc, err := transcode.Compile(p, v.Match.A, v.Match.B)
		if err != nil {
			if errors.Is(err, transcode.ErrUnsupported) {
				b.xunsupported.Add(1)
				return done(&xcodeEntry{relation: v.Relation, unsupported: err.Error()}), nil
			}
			return nil, err
		}
		return done(&xcodeEntry{relation: v.Relation, xc: xc}), nil
	})
}

// ConvertRaw converts a CDR-encoded value of declaration A directly into
// CDR bytes of declaration B. Pairs whose coercion plan the wire
// transcoder supports are served bytes-to-bytes with no value tree;
// everything else falls back to decode→convert→encode through the
// cached tree converter with identical results.
func (b *Broker) ConvertRaw(ua, da, ub, db string, payload []byte) ([]byte, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)
	return b.convertRaw(nil, ua, da, ub, db, payload)
}

// convertRaw appends the converted bytes to dst (the batch op reuses one
// buffer across items; TranscodeAppend and MarshalAppend both restart
// CDR alignment at the append point, so each item is a standalone CDR
// value).
func (b *Broker) convertRaw(dst []byte, ua, da, ub, db string, payload []byte) ([]byte, error) {
	ent, cached, err := b.transcoder(ua, da, ub, db, false)
	if err != nil {
		return nil, err
	}
	switch ent.relation {
	case core.RelEquivalent, core.RelSubtypeAB:
	case core.RelSubtypeBA:
		return nil, fmt.Errorf("broker: %s/%s only converts from %s/%s (B is the subtype); swap the pair", ua, da, ub, db)
	default:
		return nil, fmt.Errorf("broker: declarations do not match:\n%s", ent.explain)
	}
	if ent.xc != nil {
		out, err := ent.xc.TranscodeAppend(dst, payload)
		if err != nil {
			return nil, err
		}
		if cached && ent.warmed {
			b.warmHits.Add(1)
		}
		b.fastConverts.Add(1)
		return out, nil
	}

	// Tree fallback: the pair converts, but its plan needs machinery the
	// fuser does not model (e.g. semantic hooks). The warm hit, if any,
	// is counted against the tier that actually serves the request.
	cent, ccached, err := b.converter(ua, da, ub, db, false)
	if err != nil {
		return nil, err
	}
	if ccached && cent.warmed {
		b.warmHits.Add(1)
	}
	mtA, err := b.Mtype(ua, da)
	if err != nil {
		return nil, err
	}
	mtB, err := b.Mtype(ub, db)
	if err != nil {
		return nil, err
	}
	in, err := wire.Unmarshal(mtA, payload)
	if err != nil {
		return nil, err
	}
	out, err := cent.conv.Convert(in)
	if err != nil {
		return nil, err
	}
	res, err := wire.NewEncoder(mtB).MarshalAppend(dst, out)
	if err != nil {
		return nil, err
	}
	b.treeConverts.Add(1)
	return res, nil
}

// MaxBatchItems bounds the number of payloads one OpConvertBatch request
// may carry. The batch is admitted as a single request, so the cap keeps
// one client from smuggling unbounded work past admission control.
const MaxBatchItems = 4096

// ConvertRawBatch converts a slice of CDR-encoded values of declaration
// A into CDR bytes of declaration B, resolving the pair's execution tier
// once for the whole batch. Item i of the result corresponds to payload
// i; the first failing item aborts the batch with its error.
func (b *Broker) ConvertRawBatch(ua, da, ub, db string, payloads [][]byte) ([][]byte, error) {
	b.inFlight.Add(1)
	defer b.inFlight.Add(-1)
	if len(payloads) > MaxBatchItems {
		return nil, fmt.Errorf("broker: batch of %d exceeds %d items", len(payloads), MaxBatchItems)
	}
	out := make([][]byte, len(payloads))
	var buf []byte
	for i, p := range payloads {
		mark := len(buf)
		var err error
		buf, err = b.convertRaw(buf, ua, da, ub, db, p)
		if err != nil {
			return nil, fmt.Errorf("broker: batch item %d: %w", i, err)
		}
		out[i] = buf[mark:len(buf):len(buf)]
	}
	return out, nil
}
