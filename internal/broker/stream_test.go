package broker

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

// The streaming fixture: IDL sequences of permuted records.
const (
	seqASrc = "struct Rec { long n; double x; };\ntypedef sequence<Rec> Batch;"
	seqBSrc = "struct Rec { double x; long n; };\ntypedef sequence<Rec> Batch;"
)

func loadIDL(t *testing.T, b *Broker, universe, src string) {
	t.Helper()
	if _, existed, err := b.Load(universe, "idl", "", src, ""); err != nil || existed {
		t.Fatalf("load %s: existed=%v err=%v", universe, existed, err)
	}
}

// TestConvertStreamFastTier: a streamed convert of a sequence pair runs
// chunk-at-a-time through the fused engine, and the bytes match the
// buffered ConvertRaw oracle even when the payload spans many credit
// windows in both directions.
func TestConvertStreamFastTier(t *testing.T) {
	b, c := startDaemon(t)
	loadIDL(t, b, "a", seqASrc)
	loadIDL(t, b, "bb", seqBSrc)

	mtA, err := b.Mtype("a", "Batch")
	if err != nil {
		t.Fatal(err)
	}
	// ~1.6 MiB: bigger than the 1 MiB stream window, so both legs must
	// move concurrently for the call to finish at all.
	recs := make([]value.Value, 100_000)
	for i := range recs {
		recs[i] = value.NewRecord(value.NewInt(int64(i)), value.Real{V: float64(i) + 0.25})
	}
	payload, err := wire.Marshal(mtA, value.FromSlice(recs))
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	n, err := c.ConvertStream("a", "Batch", "bb", "Batch", bytes.NewReader(payload), &out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.ConvertRaw("a", "Batch", "bb", "Batch", payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) || !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("streamed convert: %d bytes, oracle %d bytes", n, len(want))
	}
	if st := b.Stats(); st.FastConverts < 1 {
		t.Errorf("FastConverts = %d, want ≥ 1 for a streamed fused convert", st.FastConverts)
	}
}

// TestConvertStreamTreeFallback: a pair needing a semantic hook has no
// bytes-to-bytes program; the streamed convert must buffer under the
// cap and answer through the tree engine with oracle-identical bytes.
func TestConvertStreamTreeFallback(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadJava("analytic", "class SlopeLine { double slope; double intercept; }"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("geometric", `
		class Pt { double x; double y; }
		class SegLine { Pt a; Pt b; }
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("geometric", "annotate SegLine.a nonnull noalias\nannotate SegLine.b nonnull noalias\n"); err != nil {
		t.Fatal(err)
	}
	s.RegisterSemantic("SlopeLine", "SegLine", "slope→seg", func(v value.Value) (value.Value, error) {
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != 2 {
			return nil, fmt.Errorf("want slope/intercept record, got %s", v)
		}
		m := rec.Fields[0].(value.Real).V
		cc := rec.Fields[1].(value.Real).V
		pt := func(x float64) value.Value {
			return value.NewRecord(value.Real{V: x}, value.Real{V: m*x + cc})
		}
		return value.NewRecord(pt(0), pt(1)), nil
	})
	b := New(s, Options{})
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	Serve(srv, b)
	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	mtA, err := b.Mtype("analytic", "SlopeLine")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: 2}, value.Real{V: -1}))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := c.ConvertStream("analytic", "SlopeLine", "geometric", "SegLine", bytes.NewReader(payload), &out); err != nil {
		t.Fatal(err)
	}
	want, err := b.ConvertRaw("analytic", "SlopeLine", "geometric", "SegLine", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("tree-tier streamed bytes diverged from ConvertRaw")
	}
	if st := b.Stats(); st.TreeConverts < 1 {
		t.Errorf("TreeConverts = %d, want ≥ 1", st.TreeConverts)
	}
}

// TestConvertStreamOverCapTyped: a non-streamable fused pair buffers
// inside the engine under its cap; past it the stream must fail with a
// typed too-large error, not exhaust memory.
func TestConvertStreamOverCapTyped(t *testing.T) {
	b, c := startDaemon(t)
	loadC(t, b, "x", "typedef struct { float r; int n; } mix;")
	loadC(t, b, "y", "typedef struct { int count; float ratio; } pair;")

	// 17 MiB of junk: the record-rooted pair buffers in the engine,
	// whose fallback cap is 16 MiB.
	junk := bytes.Repeat([]byte{0xee}, 17<<20)
	var out bytes.Buffer
	_, err := c.ConvertStream("x", "mix", "y", "pair", bytes.NewReader(junk), &out)
	if err == nil {
		t.Fatal("17 MiB through a non-streamable pair succeeded")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want the buffered-fallback cap named", err)
	}
}

// TestConvertStreamWrongDirectionSwapHint: streamed converts refuse
// B<:A pairs with the same swap hint as buffered ones, at the header —
// before any payload is consumed.
func TestConvertStreamWrongDirectionSwapHint(t *testing.T) {
	b, c := startDaemon(t)
	loadC(t, b, "x", "typedef short narrow;")
	loadC(t, b, "y", "typedef int wide;")

	var out bytes.Buffer
	_, err := c.ConvertStream("y", "wide", "x", "narrow", bytes.NewReader([]byte{1, 0, 0, 0}), &out)
	if err == nil || !strings.Contains(err.Error(), "swap") {
		t.Fatalf("wide→narrow stream error = %v, want swap hint", err)
	}
}
