// Broker protocol: the daemon-facing operations layered on orb frames.
// Every payload is CDR, marshaled by package wire against small protocol
// Mtypes (strings are the §3.2 recursive list encoding over Unicode
// characters; counters are 64-bit integers) — the broker speaks the same
// wire format as the stubs it compiles. The convert op carries the value
// itself as a raw CDR payload, encoded against the declaration's own
// Mtype, after the CDR-encoded request header.
package broker

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/proto"
	"repro/internal/value"
	"repro/internal/wire"
)

// ObjectKey is the orb object key the broker service is registered under.
const ObjectKey = "mbird.broker"

// Broker protocol ops.
const (
	// OpLoad: Record(universe, lang, model, source, script) →
	// Record(existed, List(name)).
	OpLoad uint32 = iota + 1
	// OpAnnotate: Record(universe, script) → Record(lines, applied).
	OpAnnotate
	// OpCompare: Record(uA, declA, uB, declB) →
	// Record(relation, steps, cached, explain).
	OpCompare
	// OpPlan: Record(uA, declA, uB, declB) → Record(planText).
	OpPlan
	// OpConvert: Record(uA, declA, uB, declB) ++ CDR value of A's Mtype →
	// CDR value of B's Mtype.
	OpConvert
	// OpStats: empty → Record of counters (see statsT).
	OpStats
	// OpHealth: empty → Record(ready, inFlight, maxInFlight, sheds,
	// connSheds, panics, transcoderEntries). Served without admission
	// control so it answers even when the daemon is saturated.
	OpHealth
	// OpConvertBatch: Record(uA, declA, uB, declB) ++ u32 count ++
	// count × (u32 len ++ CDR value of A's Mtype) → the same framing with
	// CDR values of B's Mtype. Each value is a standalone CDR payload
	// (alignment restarts at its first byte); the length words are plain
	// little-endian u32s outside the CDR layer. The whole batch is one
	// admitted request, so batching amortizes both the per-request
	// round-trip and the admission cost; MaxBatchItems bounds it.
	OpConvertBatch
)

// Protocol Mtypes. A string is List(Character(unicode)); an int is a
// 64-bit signed Integer.
var (
	loadReqT     = proto.Record(proto.StrT, proto.StrT, proto.StrT, proto.StrT, proto.StrT)
	loadRepT     = proto.Record(proto.IntT, mtype.NewList(proto.StrT))
	annotateReqT = proto.Record(proto.StrT, proto.StrT)
	annotateRepT = proto.Record(proto.IntT, proto.IntT)
	pairReqT     = proto.Record(proto.StrT, proto.StrT, proto.StrT, proto.StrT)
	compareRepT  = proto.Record(proto.IntT, proto.IntT, proto.IntT, proto.StrT)
	planRepT     = proto.Record(proto.StrT)
	statsT       = proto.Record(
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, // compare: hits, misses, coalesced, runs, totalNs, entries
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, // convert: hits, misses, coalesced, compiles, totalNs, entries
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // evictions, inFlight, deadlineExceeded, sheds
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // xcode: hits, misses, coalesced, compiles
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // xcode: unsupported, entries, fastConverts, treeConverts
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // warm: fills, hits, peerPulls, peerPushes
	)
	healthT = proto.Record(
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, // ready, inFlight, maxInFlight, sheds, connSheds, panics
		proto.IntT, proto.IntT, // expired, canceled
		proto.IntT, proto.IntT, // transcoderEntries, peers
		proto.IntT, proto.IntT, proto.IntT, // heapBytes, gcPauseNs, numGC
	)
)

// appendBatch serializes a batch item list: u32 count, then per item a
// u32 length and the item bytes (all lengths plain little-endian,
// outside the CDR layer).
func appendBatch(dst []byte, items [][]byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(items)))
	for _, it := range items {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(it)))
		dst = append(dst, it...)
	}
	return dst
}

// parseBatch decodes an appendBatch item list, validating counts and
// lengths against the data actually present.
func parseBatch(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("broker: batch truncated at count")
	}
	count := binary.LittleEndian.Uint32(data)
	if count > MaxBatchItems {
		return nil, fmt.Errorf("broker: batch of %d exceeds %d items", count, MaxBatchItems)
	}
	data = data[4:]
	items := make([][]byte, count)
	for i := range items {
		if len(data) < 4 {
			return nil, fmt.Errorf("broker: batch truncated at item %d length", i)
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint64(n) > uint64(len(data)) {
			return nil, fmt.Errorf("broker: batch item %d of %d bytes overruns body", i, n)
		}
		items[i] = data[:n:n]
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("broker: %d trailing bytes after batch", len(data))
	}
	return items, nil
}

// Serve registers the broker service on an orb server under ObjectKey
// and attaches the server to the broker so the health op can expose its
// transport-level counters (recovered panics, per-connection sheds).
func Serve(srv *orb.Server, b *Broker) {
	b.srv.Store(srv)
	srv.Register(ObjectKey, Handler(b))
	srv.RegisterStream(ObjectKey, streamHandler(b))
}

// admitRequest acquires an admission slot, waiting up to AdmitWait for
// one before shedding the request with a typed orb.ErrOverloaded. The
// returned release must be called when the request's work — including
// work that outlives its RequestTimeout — finishes.
func (b *Broker) admitRequest() (release func(), err error) {
	if b.admit == nil {
		return func() {}, nil
	}
	release = func() { <-b.admit }
	select {
	case b.admit <- struct{}{}:
		return release, nil
	default:
	}
	t := time.NewTimer(b.opts.AdmitWait)
	defer t.Stop()
	select {
	case b.admit <- struct{}{}:
		return release, nil
	case <-t.C:
		b.sheds.Add(1)
		return nil, fmt.Errorf("%w: %d requests already in flight", orb.ErrOverloaded, cap(b.admit))
	}
}

// Handler returns the orb handler implementing the broker protocol, with
// admission control outermost. When the broker's RequestTimeout is set,
// each admitted request is bounded by it: the client gets a prompt
// deadline error while the session work runs to completion in the
// background (caches still warm, so a retry after the deadline is
// usually a hit). Health and stats requests bypass admission — they are
// pure counter reads and must answer when the daemon is saturated.
func Handler(b *Broker) orb.Handler {
	h := handler(b)
	d := b.opts.RequestTimeout
	return func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		if op == OpHealth || op == OpStats {
			return h(ctx, op, body)
		}
		release, err := b.admitRequest()
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			defer release()
			return h(ctx, op, body)
		}
		type res struct {
			body []byte
			err  error
		}
		ch := make(chan res, 1)
		// The session work is detached from the caller's context on
		// purpose: a caller whose budget runs out mid-compile gets a
		// prompt typed error below, while the work finishes and warms the
		// caches so a retry with a fresh budget is a hit.
		bg := context.WithoutCancel(ctx)
		// Detached work can outlive this handler's return, and under orb
		// body pooling the request buffer is recycled the moment the
		// handler returns — hand the goroutine its own copy.
		if len(body) > 0 {
			body = append([]byte(nil), body...)
		}
		go func() {
			defer release()
			// orb.Call, not a bare call: this goroutine is outside the orb
			// server's own recover, so an unguarded panic here would kill
			// the daemon.
			body, err := orb.Call(bg, h, op, body)
			ch <- res{body, err}
		}()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case r := <-ch:
			return r.body, r.err
		case <-t.C:
			b.deadlines.Add(1)
			return nil, fmt.Errorf("broker: request exceeded server deadline %v", d)
		case <-ctx.Done():
			// The caller's propagated budget expired (or it sent a cancel
			// frame) while the work was in flight; answer with the typed
			// expiry so the client distinguishes "my clock ran out" from
			// "the broker is slow".
			b.deadlines.Add(1)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, fmt.Errorf("%w: budget spent while request was in flight", orb.ErrExpired)
			}
			return nil, fmt.Errorf("broker: caller went away: %w", ctx.Err())
		}
	}
}

func handler(b *Broker) orb.Handler {
	return func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		switch op {
		case OpLoad:
			args, err := proto.UnmarshalStrings(loadReqT, body, 5)
			if err != nil {
				return nil, err
			}
			names, existed, err := b.Load(args[0], args[1], args[2], args[3], args[4])
			if err != nil {
				return nil, err
			}
			nameVals := make([]value.Value, len(names))
			for i, n := range names {
				nameVals[i] = proto.Str(n)
			}
			ex := int64(0)
			if existed {
				ex = 1
			}
			return wire.Marshal(loadRepT, value.NewRecord(proto.Int(ex), value.FromSlice(nameVals)))

		case OpAnnotate:
			args, err := proto.UnmarshalStrings(annotateReqT, body, 2)
			if err != nil {
				return nil, err
			}
			res, err := b.Annotate(args[0], args[1])
			if err != nil {
				return nil, err
			}
			return wire.Marshal(annotateRepT,
				value.NewRecord(proto.Int(int64(res.Lines)), proto.Int(int64(res.Applied))))

		case OpCompare:
			args, err := proto.UnmarshalStrings(pairReqT, body, 4)
			if err != nil {
				return nil, err
			}
			v, err := b.Compare(args[0], args[1], args[2], args[3])
			if err != nil {
				return nil, err
			}
			cached := int64(0)
			if v.Cached {
				cached = 1
			}
			return wire.Marshal(compareRepT, value.NewRecord(
				proto.Int(int64(v.Relation)), proto.Int(int64(v.Steps)), proto.Int(cached), proto.Str(v.Explain)))

		case OpPlan:
			args, err := proto.UnmarshalStrings(pairReqT, body, 4)
			if err != nil {
				return nil, err
			}
			text, err := b.PlanText(args[0], args[1], args[2], args[3])
			if err != nil {
				return nil, err
			}
			return wire.Marshal(planRepT, value.NewRecord(proto.Str(text)))

		case OpConvert:
			hdr, n, err := wire.UnmarshalPrefix(pairReqT, body)
			if err != nil {
				return nil, fmt.Errorf("convert header: %w", err)
			}
			args, err := proto.RecordStrings(hdr, 4)
			if err != nil {
				return nil, err
			}
			return b.ConvertRaw(args[0], args[1], args[2], args[3], body[n:])

		case OpConvertBatch:
			hdr, n, err := wire.UnmarshalPrefix(pairReqT, body)
			if err != nil {
				return nil, fmt.Errorf("convert header: %w", err)
			}
			args, err := proto.RecordStrings(hdr, 4)
			if err != nil {
				return nil, err
			}
			payloads, err := parseBatch(body[n:])
			if err != nil {
				return nil, err
			}
			outs, err := b.ConvertRawBatch(args[0], args[1], args[2], args[3], payloads)
			if err != nil {
				return nil, err
			}
			return appendBatch(nil, outs), nil

		case OpStats:
			st := b.Stats()
			return wire.Marshal(statsT, value.NewRecord(
				proto.Int(st.CompareHits), proto.Int(st.CompareMisses), proto.Int(st.CompareCoalesced),
				proto.Int(st.CompareRuns), proto.Int(st.CompareTotal.Nanoseconds()), proto.Int(int64(st.VerdictEntries)),
				proto.Int(st.ConvertHits), proto.Int(st.ConvertMisses), proto.Int(st.ConvertCoalesced),
				proto.Int(st.Compiles), proto.Int(st.CompileTotal.Nanoseconds()), proto.Int(int64(st.ConverterEntries)),
				proto.Int(st.Evictions), proto.Int(st.InFlight), proto.Int(st.DeadlineExceeded), proto.Int(st.Sheds),
				proto.Int(st.XcodeHits), proto.Int(st.XcodeMisses), proto.Int(st.XcodeCoalesced), proto.Int(st.XcodeCompiles),
				proto.Int(st.XcodeUnsupported), proto.Int(int64(st.XcodeEntries)), proto.Int(st.FastConverts), proto.Int(st.TreeConverts),
				proto.Int(st.WarmFills), proto.Int(st.WarmHits), proto.Int(st.PeerPulls), proto.Int(st.PeerPushes)))

		case OpHealth:
			h := b.Health()
			ready := int64(0)
			if h.Ready {
				ready = 1
			}
			return wire.Marshal(healthT, value.NewRecord(
				proto.Int(ready), proto.Int(h.InFlight), proto.Int(int64(h.MaxInFlight)),
				proto.Int(h.Sheds), proto.Int(h.ConnSheds), proto.Int(h.Panics),
				proto.Int(h.Expired), proto.Int(h.Canceled),
				proto.Int(h.TranscoderEntries), proto.Int(h.Peers),
				proto.Int(h.HeapBytes), proto.Int(h.GCPauseNs), proto.Int(h.NumGC)))

		default:
			return nil, fmt.Errorf("broker: unknown op %d", op)
		}
	}
}

// Transport is the connection a broker Client speaks through: a plain
// orb.Client, or a resilience layer such as resil.Client (pooled,
// deadline-bounded, retrying — safe here because every broker op is
// idempotent: verdicts and converters are content-addressed by
// fingerprint and loads are keyed by universe name).
type Transport interface {
	InvokeContext(ctx context.Context, key string, op uint32, body []byte) ([]byte, error)
	Close() error
}

// Client is a typed client for the broker protocol, safe for concurrent
// use (orb clients pipeline requests).
type Client struct {
	t Transport
}

// NewClient wraps an established orb connection.
func NewClient(c *orb.Client) *Client { return &Client{t: c} }

// NewTransportClient wraps any Transport — typically a resil.Client for
// pooling, deadlines, retries, and hedging.
func NewTransportClient(t Transport) *Client { return &Client{t: t} }

// DialTimeout bounds DialClient's connection attempt.
const DialTimeout = 10 * time.Second

// DialClient connects to a broker daemon over a single orb connection,
// bounding the dial by DialTimeout.
func DialClient(addr string) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DialTimeout)
	defer cancel()
	c, err := orb.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &Client{t: c}, nil
}

// Close tears down the underlying transport.
func (c *Client) Close() error { return c.t.Close() }

// Load ships a declaration source to the daemon. It is idempotent per
// universe name: existed reports that the universe was already loaded and
// the source was ignored.
func (c *Client) Load(universe, lang, model, src, script string) (names []string, existed bool, err error) {
	return c.LoadContext(context.Background(), universe, lang, model, src, script)
}

// LoadContext is Load bounded by a context.
func (c *Client) LoadContext(ctx context.Context, universe, lang, model, src, script string) (names []string, existed bool, err error) {
	body, err := proto.MarshalStrings(loadReqT, universe, lang, model, src, script)
	if err != nil {
		return nil, false, err
	}
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpLoad, body)
	if err != nil {
		return nil, false, err
	}
	v, err := wire.Unmarshal(loadRepT, reply)
	if err != nil {
		return nil, false, err
	}
	rec := v.(value.Record)
	ex, err := proto.GoInt(rec.Fields[0])
	if err != nil {
		return nil, false, err
	}
	elems, err := value.ToSlice(rec.Fields[1])
	if err != nil {
		return nil, false, err
	}
	names = make([]string, len(elems))
	for i, e := range elems {
		if names[i], err = proto.GoStr(e); err != nil {
			return nil, false, err
		}
	}
	return names, ex != 0, nil
}

// Annotate applies a script to a loaded universe on the daemon.
func (c *Client) Annotate(universe, script string) (lines, applied int, err error) {
	return c.AnnotateContext(context.Background(), universe, script)
}

// AnnotateContext is Annotate bounded by a context.
func (c *Client) AnnotateContext(ctx context.Context, universe, script string) (lines, applied int, err error) {
	body, err := proto.MarshalStrings(annotateReqT, universe, script)
	if err != nil {
		return 0, 0, err
	}
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpAnnotate, body)
	if err != nil {
		return 0, 0, err
	}
	v, err := wire.Unmarshal(annotateRepT, reply)
	if err != nil {
		return 0, 0, err
	}
	rec := v.(value.Record)
	l, err := proto.GoInt(rec.Fields[0])
	if err != nil {
		return 0, 0, err
	}
	a, err := proto.GoInt(rec.Fields[1])
	if err != nil {
		return 0, 0, err
	}
	return int(l), int(a), nil
}

// Compare asks the daemon for the relation between two declarations.
func (c *Client) Compare(ua, da, ub, db string) (Verdict, error) {
	return c.CompareContext(context.Background(), ua, da, ub, db)
}

// CompareContext is Compare bounded by a context.
func (c *Client) CompareContext(ctx context.Context, ua, da, ub, db string) (Verdict, error) {
	body, err := proto.MarshalStrings(pairReqT, ua, da, ub, db)
	if err != nil {
		return Verdict{}, err
	}
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpCompare, body)
	if err != nil {
		return Verdict{}, err
	}
	v, err := wire.Unmarshal(compareRepT, reply)
	if err != nil {
		return Verdict{}, err
	}
	rec := v.(value.Record)
	rel, err := proto.GoInt(rec.Fields[0])
	if err != nil {
		return Verdict{}, err
	}
	steps, err := proto.GoInt(rec.Fields[1])
	if err != nil {
		return Verdict{}, err
	}
	cached, err := proto.GoInt(rec.Fields[2])
	if err != nil {
		return Verdict{}, err
	}
	explain, err := proto.GoStr(rec.Fields[3])
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Relation: core.Relation(rel),
		Steps:    int(steps),
		Explain:  explain,
		Cached:   cached != 0,
	}, nil
}

// Plan fetches the rendered coercion plan for a pair.
func (c *Client) Plan(ua, da, ub, db string) (string, error) {
	return c.PlanContext(context.Background(), ua, da, ub, db)
}

// PlanContext is Plan bounded by a context.
func (c *Client) PlanContext(ctx context.Context, ua, da, ub, db string) (string, error) {
	body, err := proto.MarshalStrings(pairReqT, ua, da, ub, db)
	if err != nil {
		return "", err
	}
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpPlan, body)
	if err != nil {
		return "", err
	}
	v, err := wire.Unmarshal(planRepT, reply)
	if err != nil {
		return "", err
	}
	return proto.GoStr(v.(value.Record).Fields[0])
}

// ConvertRaw converts a CDR-encoded value of declaration A into a
// CDR-encoded value of declaration B. The caller encodes/decodes against
// the declarations' Mtypes (which it can lower locally from the same
// sources it loaded).
func (c *Client) ConvertRaw(ua, da, ub, db string, payload []byte) ([]byte, error) {
	return c.ConvertRawContext(context.Background(), ua, da, ub, db, payload)
}

// ConvertRawContext is ConvertRaw bounded by a context.
func (c *Client) ConvertRawContext(ctx context.Context, ua, da, ub, db string, payload []byte) ([]byte, error) {
	hdr, err := proto.MarshalStrings(pairReqT, ua, da, ub, db)
	if err != nil {
		return nil, err
	}
	return c.t.InvokeContext(ctx, ObjectKey, OpConvert, append(hdr, payload...))
}

// ConvertBatchRaw converts a slice of CDR-encoded values of declaration
// A into CDR-encoded values of declaration B in one request. The daemon
// resolves the pair's execution tier once and converts every item
// against it; item i of the result corresponds to payload i.
func (c *Client) ConvertBatchRaw(ua, da, ub, db string, payloads [][]byte) ([][]byte, error) {
	return c.ConvertBatchRawContext(context.Background(), ua, da, ub, db, payloads)
}

// ConvertBatchRawContext is ConvertBatchRaw bounded by a context.
func (c *Client) ConvertBatchRawContext(ctx context.Context, ua, da, ub, db string, payloads [][]byte) ([][]byte, error) {
	body, err := proto.MarshalStrings(pairReqT, ua, da, ub, db)
	if err != nil {
		return nil, err
	}
	body = appendBatch(body, payloads)
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpConvertBatch, body)
	if err != nil {
		return nil, err
	}
	outs, err := parseBatch(reply)
	if err != nil {
		return nil, err
	}
	if len(outs) != len(payloads) {
		return nil, fmt.Errorf("broker: batch reply has %d items, want %d", len(outs), len(payloads))
	}
	return outs, nil
}

// ConvertBatch is ConvertBatchRaw with client-side marshaling against
// the two Mtypes.
func (c *Client) ConvertBatch(ua, da, ub, db string, mtA, mtB *mtype.Type, vs []value.Value) ([]value.Value, error) {
	return c.ConvertBatchContext(context.Background(), ua, da, ub, db, mtA, mtB, vs)
}

// ConvertBatchContext is ConvertBatch bounded by a context.
func (c *Client) ConvertBatchContext(ctx context.Context, ua, da, ub, db string, mtA, mtB *mtype.Type, vs []value.Value) ([]value.Value, error) {
	payloads := make([][]byte, len(vs))
	for i, v := range vs {
		p, err := wire.Marshal(mtA, v)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	replies, err := c.ConvertBatchRawContext(ctx, ua, da, ub, db, payloads)
	if err != nil {
		return nil, err
	}
	outs := make([]value.Value, len(replies))
	for i, r := range replies {
		v, err := wire.Unmarshal(mtB, r)
		if err != nil {
			return nil, err
		}
		outs[i] = v
	}
	return outs, nil
}

// Convert is ConvertRaw with client-side marshaling against the two
// Mtypes (typically lowered by a local session from the same sources).
func (c *Client) Convert(ua, da, ub, db string, mtA, mtB *mtype.Type, v value.Value) (value.Value, error) {
	return c.ConvertContext(context.Background(), ua, da, ub, db, mtA, mtB, v)
}

// ConvertContext is Convert bounded by a context.
func (c *Client) ConvertContext(ctx context.Context, ua, da, ub, db string, mtA, mtB *mtype.Type, v value.Value) (value.Value, error) {
	payload, err := wire.Marshal(mtA, v)
	if err != nil {
		return nil, err
	}
	reply, err := c.ConvertRawContext(ctx, ua, da, ub, db, payload)
	if err != nil {
		return nil, err
	}
	return wire.Unmarshal(mtB, reply)
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats bounded by a context.
func (c *Client) StatsContext(ctx context.Context) (Stats, error) {
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	v, err := wire.Unmarshal(statsT, reply)
	if err != nil {
		return Stats{}, err
	}
	r := proto.NewInts(v)
	get := r.Get
	st := Stats{
		CompareHits: get(0), CompareMisses: get(1), CompareCoalesced: get(2),
		CompareRuns: get(3), CompareTotal: time.Duration(get(4)), VerdictEntries: int(get(5)),
		ConvertHits: get(6), ConvertMisses: get(7), ConvertCoalesced: get(8),
		Compiles: get(9), CompileTotal: time.Duration(get(10)), ConverterEntries: int(get(11)),
		Evictions: get(12), InFlight: get(13), DeadlineExceeded: get(14), Sheds: get(15),
		XcodeHits: get(16), XcodeMisses: get(17), XcodeCoalesced: get(18), XcodeCompiles: get(19),
		XcodeUnsupported: get(20), XcodeEntries: int(get(21)), FastConverts: get(22), TreeConverts: get(23),
		WarmFills: get(24), WarmHits: get(25), PeerPulls: get(26), PeerPushes: get(27),
	}
	return st, r.Err()
}

// Health fetches the daemon's readiness and load snapshot. It is served
// without admission control, so it answers even when the daemon sheds
// every other request.
func (c *Client) Health() (Health, error) {
	return c.HealthContext(context.Background())
}

// HealthContext is Health bounded by a context.
func (c *Client) HealthContext(ctx context.Context) (Health, error) {
	reply, err := c.t.InvokeContext(ctx, ObjectKey, OpHealth, nil)
	if err != nil {
		return Health{}, err
	}
	v, err := wire.Unmarshal(healthT, reply)
	if err != nil {
		return Health{}, err
	}
	r := proto.NewInts(v)
	get := r.Get
	h := Health{
		Ready:             get(0) != 0,
		InFlight:          get(1),
		MaxInFlight:       int(get(2)),
		Sheds:             get(3),
		ConnSheds:         get(4),
		Panics:            get(5),
		Expired:           get(6),
		Canceled:          get(7),
		TranscoderEntries: get(8),
		Peers:             get(9),
		HeapBytes:         get(10),
		GCPauseNs:         get(11),
		NumGC:             get(12),
	}
	return h, r.Err()
}
