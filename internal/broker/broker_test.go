package broker

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/value"
)

// loadC loads a C source into a fresh universe, failing the test on error.
func loadC(t *testing.T, b *Broker, universe, src string) {
	t.Helper()
	if _, existed, err := b.Load(universe, "c", "ilp32", src, ""); err != nil || existed {
		t.Fatalf("load %s: existed=%v err=%v", universe, existed, err)
	}
}

func newBroker(opts Options) *Broker { return New(core.NewSession(), opts) }

func TestCompareAndConvert(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float r; int n; } mix;")
	loadC(t, b, "y", "typedef struct { int count; float ratio; } pair;")

	v, err := b.Compare("x", "mix", "y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent {
		t.Fatalf("relation = %v, want equivalent", v.Relation)
	}
	if v.Cached {
		t.Fatal("first compare reported cached")
	}
	v2, err := b.Compare("x", "mix", "y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatal("second compare not served from cache")
	}

	// record(real, int) → record(int, real): fields cross by type.
	in := value.NewRecord(value.Real{V: 1.5}, value.NewInt(7))
	out, err := b.Convert("x", "mix", "y", "pair", in)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := out.(value.Record)
	if !ok || len(rec.Fields) != 2 {
		t.Fatalf("converted value = %v", out)
	}
	if got := rec.Fields[0].(value.Int); got.V.Int64() != 7 {
		t.Fatalf("field 0 = %v, want 7", rec.Fields[0])
	}
	if got := rec.Fields[1].(value.Real); got.V != 1.5 {
		t.Fatalf("field 1 = %v, want 1.5", rec.Fields[1])
	}

	st := b.Stats()
	if st.CompareRuns != 1 {
		t.Errorf("CompareRuns = %d, want 1", st.CompareRuns)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", st.Compiles)
	}
	if st.CompareHits != 1 {
		t.Errorf("CompareHits = %d, want 1", st.CompareHits)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0", st.InFlight)
	}
}

// Permuted declarations share a verdict-cache entry (canonical key) but
// not a converter-cache entry (exact key).
func TestCanonicalVerdictSharing(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float r; int n; } mix;")
	loadC(t, b, "y", "typedef struct { int count; float ratio; } pair;")
	loadC(t, b, "z", "typedef struct { float v; int k; } mix2;")

	if _, err := b.Compare("x", "mix", "y", "pair"); err != nil {
		t.Fatal(err)
	}
	// z/mix2 is field-for-field identical to x/mix, so (z,y) has the same
	// canonical pair as (x,y): the verdict must come from the cache.
	v, err := b.Compare("z", "mix2", "y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Fatal("structurally identical pair missed the verdict cache")
	}
	// mix and pair are permutations of each other, so they share one
	// canonical digest — the swapped pair keys to the same entry, and
	// since permutation-equals implies equivalence, the symmetric verdict
	// is correct.
	if v, err = b.Compare("y", "pair", "x", "mix"); err != nil || !v.Cached {
		t.Fatalf("swapped permuted pair: cached=%v err=%v (want cache hit)", v.Cached, err)
	}
	if st := b.Stats(); st.CompareRuns != 1 {
		t.Errorf("CompareRuns = %d, want 1", st.CompareRuns)
	}

	// Converters for x→y and z→y share the exact key too (identical
	// layouts), so only one compile happens for both.
	in := value.NewRecord(value.Real{V: 2}, value.NewInt(3))
	if _, err := b.Convert("x", "mix", "y", "pair", in); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Convert("z", "mix2", "y", "pair", in); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (identical exact pair)", st.Compiles)
	}
}

func TestSingleflight(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float r; int n; } mix;")
	loadC(t, b, "y", "typedef struct { int count; float ratio; } pair;")

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := b.Compare("x", "mix", "y", "pair"); err != nil {
				errs <- err
			} else if v.Relation != core.RelEquivalent {
				errs <- fmt.Errorf("relation %v", v.Relation)
			}
			in := value.NewRecord(value.Real{V: 1}, value.NewInt(2))
			if _, err := b.Convert("x", "mix", "y", "pair", in); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.CompareRuns != 1 {
		t.Errorf("CompareRuns = %d, want 1 (singleflight)", st.CompareRuns)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (singleflight)", st.Compiles)
	}
	if total := st.CompareHits + st.CompareMisses + st.CompareCoalesced; total != n {
		t.Errorf("compare requests accounted = %d, want %d", total, n)
	}
}

func TestSubtypeDirections(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef short narrow;")
	loadC(t, b, "y", "typedef int wide;")

	v, err := b.Compare("x", "narrow", "y", "wide")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelSubtypeAB {
		t.Fatalf("relation = %v, want subtype A<:B", v.Relation)
	}
	if _, err := b.Convert("x", "narrow", "y", "wide", value.NewInt(-5)); err != nil {
		t.Fatalf("narrow→wide convert: %v", err)
	}
	// The reverse pair is B<:A: Convert must refuse and say to swap.
	if _, err := b.Convert("y", "wide", "x", "narrow", value.NewInt(1)); err == nil ||
		!strings.Contains(err.Error(), "swap") {
		t.Fatalf("wide→narrow convert error = %v, want swap hint", err)
	}
}

func TestMismatchCachedNegative(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float a; } fa;")
	loadC(t, b, "y", "typedef struct { int b; } ib;")
	v, err := b.Compare("x", "fa", "y", "ib")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelNone || v.Explain == "" {
		t.Fatalf("verdict = %+v, want RelNone with diagnosis", v)
	}
	if _, err := b.Convert("x", "fa", "y", "ib", value.NewRecord(value.Real{V: 1})); err == nil {
		t.Fatal("convert of mismatched pair succeeded")
	}
	if v, err = b.Compare("x", "fa", "y", "ib"); err != nil || !v.Cached {
		t.Fatalf("negative verdict not cached: %+v %v", v, err)
	}
}

// Annotation changes lowering; the content-addressed caches need no
// invalidation because the new lowering fingerprints differently.
func TestAnnotateContentAddressed(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", "typedef struct { float *p; } holder;")
	loadC(t, b, "y", "typedef struct { float x; } plain;")

	v, err := b.Compare("x", "holder", "y", "plain")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation == core.RelEquivalent {
		t.Fatal("nullable pointer should not be equivalent to plain float")
	}
	if _, err := b.Annotate("x", "annotate holder.p nonnull"); err != nil {
		t.Fatal(err)
	}
	v, err = b.Compare("x", "holder", "y", "plain")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent {
		t.Fatalf("after nonnull annotation: relation = %v, want equivalent", v.Relation)
	}
	if v.Cached {
		t.Fatal("post-annotation compare served the stale pre-annotation entry")
	}
}

func TestLRUEviction(t *testing.T) {
	b := newBroker(Options{VerdictCacheSize: 2, ConverterCacheSize: 2})
	var decls []string
	var src strings.Builder
	for k := 1; k <= 6; k++ {
		fmt.Fprintf(&src, "typedef struct { int a[%d]; } t%d;\n", k, k)
		decls = append(decls, fmt.Sprintf("t%d", k))
	}
	loadC(t, b, "u", src.String())
	for _, d := range decls {
		if v, err := b.Compare("u", d, "u", d); err != nil || v.Relation != core.RelEquivalent {
			t.Fatalf("%s: %+v %v", d, v, err)
		}
	}
	st := b.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions with cache size 2 and 6 pairs")
	}
	if st.VerdictEntries > 2 {
		t.Errorf("VerdictEntries = %d, exceeds capacity", st.VerdictEntries)
	}
	// A re-compare of an evicted pair recomputes rather than failing.
	if v, err := b.Compare("u", decls[0], "u", decls[0]); err != nil || v.Cached {
		t.Fatalf("evicted pair: cached=%v err=%v", v.Cached, err)
	}
}

// Satellite: core.Session is documented as not safe for concurrent use —
// its lowering memo and comparer caches are plain maps. This test drives
// Compare, Convert, Mtype, DeclNames, Load, and Annotate through the
// broker from many goroutines under -race; the broker's session mutex is
// what makes it pass (removing b.sessMu.Lock from Mtype makes the race
// detector fire on lower.(*Lowerer).Decl's memo map).
func TestConcurrentSessionUse(t *testing.T) {
	b := newBroker(Options{})
	loadC(t, b, "x", `
typedef struct { float r; int n; } mix;
typedef struct { mix m; float extra; } outer;
typedef short narrow;
`)
	loadC(t, b, "y", `
typedef struct { int count; float ratio; } pair;
typedef struct { float bonus; pair p; } wrapper;
typedef int wide;
`)

	const workers = 24
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 5 {
				case 0:
					if _, err := b.Compare("x", "mix", "y", "pair"); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := b.Compare("x", "outer", "y", "wrapper"); err != nil {
						errs <- err
						return
					}
				case 2:
					in := value.NewRecord(value.Real{V: float64(i)}, value.NewInt(int64(i)))
					if _, err := b.Convert("x", "mix", "y", "pair", in); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := b.Mtype("x", "outer"); err != nil {
						errs <- err
						return
					}
				case 4:
					if _, err := b.DeclNames("y"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	// Concurrent loads of new universes and a mid-flight annotation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			u := fmt.Sprintf("extra%d", i)
			if _, _, err := b.Load(u, "c", "ilp32", "typedef struct { float q; } qq;", ""); err != nil {
				errs <- err
				return
			}
		}
		if _, err := b.Annotate("extra0", "annotate qq range=0..10"); err != nil {
			// Annotation vocabulary mismatches are fine here; the point is
			// the concurrent session access, not the script.
			_ = err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.CompareRuns < 2 {
		t.Errorf("CompareRuns = %d, want ≥ 2 distinct pairs compared", st.CompareRuns)
	}
}
