package broker

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/resil"
)

// benchStructSrc generates a structurally distinct ~1000-leaf nested
// struct per universe index (field kinds rotate with the index), so
// cross-universe compares never coalesce or hit the canonical-form
// cache, and each compare is heavy enough for admission slots to stay
// occupied past AdmitWait under a 4x load.
func benchStructSrc(i int) string {
	kinds := []string{"int", "float", "short", "unsigned int"}
	var sb strings.Builder
	sb.WriteString("typedef struct {\n")
	// Field counts vary with the index so no two universes canonicalize
	// to the same shape.
	for j := 0; j < 16+i; j++ {
		fmt.Fprintf(&sb, "  %s e%d;\n", kinds[(i+j)%len(kinds)], j)
	}
	sb.WriteString("} inner;\n")
	sb.WriteString("typedef struct {\n")
	for j := 0; j < 64+i; j++ {
		fmt.Fprintf(&sb, "  inner f%d;\n", j)
		fmt.Fprintf(&sb, "  %s g%d;\n", kinds[(i+j)%len(kinds)], j)
	}
	sb.WriteString("} s;\n")
	return sb.String()
}

// benchOverload drives a Workers=2 broker with 32 concurrent clients —
// roughly 4x an admission cap of 8 — and reports goodput alongside the
// shed and retry counters. maxInFlight < 0 disables shedding, the
// baseline where overload queues inside the daemon instead.
func benchOverload(b *testing.B, maxInFlight int) {
	// On a single-P runtime the CPU-bound compare goroutine self-clocks
	// the whole pipeline — the load generators only run between compares,
	// so demand can never outpace capacity. A few extra Ps let the kernel
	// preempt the compare thread and the 4x demand actually arrive.
	if runtime.GOMAXPROCS(0) < 8 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}
	br := newBroker(Options{
		Workers:          2,
		VerdictCacheSize: 2, // thrash: nearly every compare is a real run
		MaxInFlight:      maxInFlight,
		RequestTimeout:   time.Second,
	})
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	Serve(srv, br)

	rc := resil.New(srv.Addr(), resil.Options{
		PoolSize:    8,
		MaxAttempts: 4,
		BackoffBase: 5 * time.Millisecond,
	})
	c := NewTransportClient(rc)
	defer c.Close()

	// Each pair is the same shape loaded into two universes: the compare
	// is a full (equivalent) traversal, while the 16 distinct shapes give
	// 16 distinct verdict-cache keys that thrash the 2-entry LRU.
	const pairs = 16
	for i := 0; i < pairs; i++ {
		src := benchStructSrc(i)
		if _, _, err := c.Load(fmt.Sprintf("a%d", i), "c", "ilp32", src, ""); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Load(fmt.Sprintf("b%d", i), "c", "ilp32", src, ""); err != nil {
			b.Fatal(err)
		}
	}

	var ok, failed, okNanos atomic.Int64
	work := make(chan int)
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ua := fmt.Sprintf("a%d", i%pairs)
				ub := fmt.Sprintf("b%d", i%pairs)
				start := time.Now()
				if _, err := c.Compare(ua, "s", ub, "s"); err != nil {
					failed.Add(1)
				} else {
					ok.Add(1)
					okNanos.Add(time.Since(start).Nanoseconds())
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(ok.Load())/elapsed, "ok/s")
	}
	if n := ok.Load(); n > 0 {
		b.ReportMetric(float64(okNanos.Load())/float64(n)/1e6, "ok-lat-ms")
	}
	b.ReportMetric(float64(failed.Load()), "failed")
	st := br.Stats()
	b.ReportMetric(float64(st.CompareRuns), "runs")
	b.ReportMetric(float64(st.Sheds), "sheds")
	b.ReportMetric(float64(rc.Stats().Overloads), "overload-retries")
}

func BenchmarkBrokerOverload(b *testing.B) {
	b.Run("shed-on", func(b *testing.B) { benchOverload(b, 8) })
	b.Run("shed-off", func(b *testing.B) { benchOverload(b, -1) })
}
