package broker

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/value"
	"repro/internal/wire"
)

// startDaemonOpts serves a broker built with opts on a loopback orb
// server and returns it alongside a connected protocol client.
func startDaemonOpts(t *testing.T, opts Options) (*Broker, *Client) {
	t.Helper()
	b := newBroker(opts)
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	Serve(srv, b)
	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return b, c
}

// startDaemon is startDaemonOpts with defaults.
func startDaemon(t *testing.T) (*Broker, *Client) {
	t.Helper()
	return startDaemonOpts(t, Options{})
}

func TestProtocolRoundTrip(t *testing.T) {
	b, c := startDaemon(t)

	names, existed, err := c.Load("x", "c", "ilp32",
		"typedef struct { float r; int n; } mix;\ntypedef struct { float *p; } holder;", "")
	if err != nil || existed {
		t.Fatalf("load: names=%v existed=%v err=%v", names, existed, err)
	}
	if len(names) != 2 || names[0] != "holder" || names[1] != "mix" {
		t.Fatalf("names = %v", names)
	}
	// Idempotent reload.
	if _, existed, err = c.Load("x", "c", "ilp32", "ignored", ""); err != nil || !existed {
		t.Fatalf("reload: existed=%v err=%v", existed, err)
	}
	if _, _, err := c.Load("y", "c", "ilp32", "typedef struct { int count; float ratio; } pair;", ""); err != nil {
		t.Fatal(err)
	}

	// Annotate over the wire (lines/applied counts round-trip).
	lines, applied, err := c.Annotate("x", "# comment only\n")
	if err != nil || lines != 0 || applied != 0 {
		t.Fatalf("annotate: %d %d %v", lines, applied, err)
	}

	v, err := c.Compare("x", "mix", "y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent || v.Cached {
		t.Fatalf("verdict = %+v", v)
	}
	if v, err = c.Compare("x", "mix", "y", "pair"); err != nil || !v.Cached {
		t.Fatalf("warm verdict = %+v err=%v", v, err)
	}

	text, err := c.Plan("x", "mix", "y", "pair")
	if err != nil || !strings.Contains(text, "plan(") {
		t.Fatalf("plan = %q err=%v", text, err)
	}

	// Convert through the daemon with client-side CDR marshaling.
	mtA, err := b.Mtype("x", "mix")
	if err != nil {
		t.Fatal(err)
	}
	mtB, err := b.Mtype("y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	in := value.NewRecord(value.Real{V: 4.5}, value.NewInt(9))
	out, err := c.Convert("x", "mix", "y", "pair", mtA, mtB, in)
	if err != nil {
		t.Fatal(err)
	}
	rec := out.(value.Record)
	if n, _ := rec.Fields[0].(value.Int).Int64(); n != 9 {
		t.Fatalf("converted = %v", out)
	}
	if rec.Fields[1].(value.Real).V != 4.5 {
		t.Fatalf("converted = %v", out)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompareRuns != 1 || st.Compiles != 1 {
		t.Errorf("stats: runs=%d compiles=%d, want 1/1", st.CompareRuns, st.Compiles)
	}
	if st.CompareHits < 1 {
		t.Errorf("stats: hits=%d, want ≥1", st.CompareHits)
	}
}

func TestProtocolErrors(t *testing.T) {
	b, c := startDaemon(t)
	if _, err := c.Compare("nope", "a", "nope", "b"); err == nil {
		t.Fatal("compare of unknown universe succeeded")
	} else if _, ok := err.(*orb.RemoteError); !ok {
		t.Fatalf("error %T, want RemoteError", err)
	}
	if _, _, err := c.Load("u", "cobol", "", "x", ""); err == nil ||
		!strings.Contains(err.Error(), "unknown language") {
		t.Fatalf("load error = %v", err)
	}
	// Mismatched pair: convert reports the diagnosis remotely.
	if _, _, err := c.Load("u", "c", "ilp32", "typedef struct { float a; } fa;\ntypedef struct { char c; } cc;", ""); err != nil {
		t.Fatal(err)
	}
	mtFa, err := b.Mtype("u", "fa")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Marshal(mtFa, value.NewRecord(value.Real{V: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConvertRaw("u", "fa", "u", "cc", payload); err == nil ||
		!strings.Contains(err.Error(), "do not match") {
		t.Fatalf("convert error = %v", err)
	}
}

func TestRequestTimeout(t *testing.T) {
	// A deadline no real request can beat: every wire call fails promptly
	// with a remote deadline error, while the session work completes in
	// the background and warms the broker's state.
	b, c := startDaemonOpts(t, Options{RequestTimeout: time.Nanosecond})
	_, _, err := c.Load("x", "c", "ilp32", "typedef struct { int n; } one;", "")
	if err == nil {
		t.Fatal("load beat a 1ns server deadline")
	}
	if _, ok := err.(*orb.RemoteError); !ok {
		t.Fatalf("error %T = %v, want RemoteError", err, err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error = %v, want a server deadline message", err)
	}
	if n := b.Stats().DeadlineExceeded; n < 1 {
		t.Errorf("DeadlineExceeded = %d, want ≥ 1", n)
	}
	// Background completion: the universe materializes despite the
	// client-visible failure.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := b.Mtype("x", "one"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed-out load never completed in the background")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestResilTransportRoundTrip(t *testing.T) {
	// The protocol client runs over the resil pooled transport instead of
	// a bare orb connection.
	b := newBroker(Options{})
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	Serve(srv, b)
	c := NewTransportClient(resil.New(srv.Addr(), resil.Options{}))
	t.Cleanup(func() { c.Close() })

	if _, _, err := c.Load("x", "c", "ilp32", "typedef struct { float r; int n; } mix;", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Load("y", "c", "ilp32", "typedef struct { int count; float ratio; } pair;", ""); err != nil {
		t.Fatal(err)
	}
	v, err := c.Compare("x", "mix", "y", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent {
		t.Fatalf("verdict = %+v", v)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompareRuns != 1 {
		t.Errorf("CompareRuns = %d, want 1", st.CompareRuns)
	}
}
