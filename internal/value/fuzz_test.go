package value

import (
	"testing"

	"repro/internal/mtype"
)

// FuzzValueJSON throws arbitrary text at the typed JSON decoder. It must
// never panic or overflow the stack, and accepted inputs must round-trip
// through ToJSON to an equal value.
func FuzzValueJSON(f *testing.F) {
	ty := mtype.NewRecord(
		mtype.Field{Name: "n", Type: mtype.NewIntegerBits(32, true)},
		mtype.Field{Name: "name", Type: mtype.NewList(mtype.NewCharacter(mtype.RepUnicode))},
		mtype.Field{Name: "opt", Type: mtype.NewOptional(mtype.NewFloat64())},
	)
	f.Add(`[7,"mockingbird",{"alt":1,"value":2.5}]`)
	f.Add(`[7,"",null]`)
	f.Add(`[-2147483648,"λ",{"alt":0,"value":null}]`)
	f.Add(`[[[[[[[[`)
	f.Add(`{"alt":`)
	f.Fuzz(func(t *testing.T, data string) {
		v, err := FromJSON(ty, []byte(data))
		if err != nil {
			return
		}
		js, err := ToJSON(ty, v)
		if err != nil {
			t.Fatalf("accepted value does not re-encode: %v", err)
		}
		v2, err := FromJSON(ty, js)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("round-trip drift: %v != %v", v, v2)
		}
	})
}
