package value

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/mtype"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want mtype.Kind
	}{
		{NewInt(1), mtype.KindInteger},
		{Real{1.5}, mtype.KindReal},
		{Char{'x'}, mtype.KindCharacter},
		{Unit{}, mtype.KindUnit},
		{NewRecord(), mtype.KindRecord},
		{Null(), mtype.KindChoice},
		{Port{Ref: "p"}, mtype.KindPort},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.want {
			t.Errorf("%s.Kind() = %s, want %s", c.v, got, c.want)
		}
	}
}

func TestInt64(t *testing.T) {
	v, err := NewInt(-42).Int64()
	if err != nil || v != -42 {
		t.Errorf("Int64 = %d, %v", v, err)
	}
	big := Int{V: new(big.Int).Lsh(bigOne(), 70)}
	if _, err := big.Int64(); err == nil {
		t.Error("expected overflow error for 2^70")
	}
	if _, err := (Int{}).Int64(); err == nil {
		t.Error("expected error for nil integer")
	}
}

func bigOne() *big.Int { return big.NewInt(1) }

func TestListRoundTrip(t *testing.T) {
	elems := []Value{Real{1}, Real{2}, Real{3}}
	lst := FromSlice(elems)
	got, err := ToSlice(lst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d elements, want 3", len(got))
	}
	for i := range elems {
		if !Equal(got[i], elems[i]) {
			t.Errorf("element %d = %s, want %s", i, got[i], elems[i])
		}
	}
}

func TestToSliceEmpty(t *testing.T) {
	got, err := ToSlice(FromSlice(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty list round trip = %v, %v", got, err)
	}
}

func TestToSliceRejectsMalformed(t *testing.T) {
	bad := []Value{
		Real{1},                        // not a choice
		Choice{Alt: 2, V: Unit{}},      // alt out of range
		Choice{Alt: 1, V: Real{1}},     // cons not a record
		Choice{Alt: 0, V: Real{1}},     // nil not a unit
		Choice{Alt: 1, V: NewRecord()}, // cons arity wrong
	}
	for i, v := range bad {
		if _, err := ToSlice(v); err == nil {
			t.Errorf("case %d: ToSlice accepted malformed list %s", i, v)
		}
	}
}

func TestCheckPrimitives(t *testing.T) {
	i8 := mtype.NewIntegerBits(8, true)
	if err := Check(NewInt(127), i8); err != nil {
		t.Errorf("127 : int8 = %v", err)
	}
	if err := Check(NewInt(128), i8); err == nil {
		t.Error("128 : int8 accepted")
	}
	if err := Check(NewInt(-129), i8); err == nil {
		t.Error("-129 : int8 accepted")
	}
	if err := Check(Real{1.0}, mtype.NewFloat32()); err != nil {
		t.Errorf("real check: %v", err)
	}
	if err := Check(Real{1.0}, i8); err == nil {
		t.Error("real : int8 accepted")
	}
	if err := Check(Char{'a'}, mtype.NewCharacter(mtype.RepASCII)); err != nil {
		t.Errorf("char check: %v", err)
	}
	if err := Check(Unit{}, mtype.Unit()); err != nil {
		t.Errorf("unit check: %v", err)
	}
	if err := Check(Port{Ref: "x"}, mtype.NewPort(mtype.Unit())); err != nil {
		t.Errorf("port check: %v", err)
	}
}

func TestCheckRecord(t *testing.T) {
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	ok := NewRecord(Real{1}, Real{2})
	if err := Check(ok, point); err != nil {
		t.Errorf("point value rejected: %v", err)
	}
	if err := Check(NewRecord(Real{1}), point); err == nil {
		t.Error("short record accepted")
	}
	if err := Check(NewRecord(Real{1}, NewInt(2)), point); err == nil {
		t.Error("mistyped field accepted")
	}
}

func TestCheckChoiceAndOptional(t *testing.T) {
	opt := mtype.NewOptional(mtype.NewFloat32())
	if err := Check(Null(), opt); err != nil {
		t.Errorf("null rejected: %v", err)
	}
	if err := Check(Some(Real{3}), opt); err != nil {
		t.Errorf("some rejected: %v", err)
	}
	if err := Check(Choice{Alt: 5, V: Unit{}}, opt); err == nil {
		t.Error("out-of-range alternative accepted")
	}
	if err := Check(Some(NewInt(1)), opt); err == nil {
		t.Error("mistyped payload accepted")
	}
}

func TestCheckList(t *testing.T) {
	lst := mtype.NewList(mtype.NewFloat32())
	v := FromSlice([]Value{Real{1}, Real{2}})
	if err := Check(v, lst); err != nil {
		t.Errorf("list value rejected: %v", err)
	}
	bad := FromSlice([]Value{Real{1}, NewInt(2)})
	if err := Check(bad, lst); err == nil {
		t.Error("list with mistyped element accepted")
	}
}

func TestCheckNilInputs(t *testing.T) {
	if err := Check(nil, mtype.Unit()); err == nil {
		t.Error("nil value accepted")
	}
	if err := Check(Unit{}, nil); err == nil {
		t.Error("nil type accepted")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{Real{1}, Real{1}, true},
		{Real{1}, NewInt(1), false},
		{Char{'a'}, Char{'a'}, true},
		{Char{'a'}, Char{'b'}, false},
		{Unit{}, Unit{}, true},
		{NewRecord(Real{1}), NewRecord(Real{1}), true},
		{NewRecord(Real{1}), NewRecord(Real{2}), false},
		{NewRecord(Real{1}), NewRecord(Real{1}, Real{2}), false},
		{Some(Real{1}), Some(Real{1}), true},
		{Some(Real{1}), Null(), false},
		{Port{Ref: "a"}, Port{Ref: "a"}, true},
		{Port{Ref: "a"}, Port{Ref: "b"}, false},
	}
	for i, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("case %d: Equal(%s, %s) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(7), "7"},
		{Unit{}, "unit"},
		{NewRecord(NewInt(1), Unit{}), "{1, unit}"},
		{Some(NewInt(2)), "<1:2>"},
		{Port{Ref: "obj:3"}, "port(obj:3)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPropertyListRoundTrip(t *testing.T) {
	f := func(xs []float64) bool {
		elems := make([]Value, len(xs))
		for i, x := range xs {
			elems[i] = Real{x}
		}
		back, err := ToSlice(FromSlice(elems))
		if err != nil || len(back) != len(elems) {
			return false
		}
		for i := range elems {
			if !Equal(back[i], elems[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyEqualReflexive(t *testing.T) {
	f := func(n int64, r float64) bool {
		vals := []Value{
			NewInt(n), Real{r}, Char{rune(n % 0x10000)},
			NewRecord(NewInt(n), Real{r}),
			Some(NewInt(n)),
		}
		for _, v := range vals {
			if !Equal(v, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
