package value

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"

	"repro/internal/limits"
	"repro/internal/mtype"
)

// maxJSONDepth bounds value nesting in both JSON directions. It matches
// the wire codec's decode cap so any value that crossed the CDR boundary
// can always be rendered. Violations wrap limits.ErrBudget.
const maxJSONDepth = limits.DefaultMaxValueDepth

// JSON interchange, typed against an Mtype. The mapping is direction-free
// (ToJSON and FromJSON are inverses over well-typed values):
//
//	Integer        → number (arbitrary precision)
//	Real           → number
//	Character      → one-character string
//	Unit           → null
//	Port           → string (the opaque ref)
//	list of Character (the §3.2 string encoding) → string
//	other lists    → array of elements
//	Record         → array of field values, declaration order
//	Choice         → {"alt": N, "value": V}; null is accepted on input
//	                 for a choice with a Unit alternative (optionals)
//
// Records map to arrays rather than objects because field names are
// annotation-erasable and need not be unique; position is the identity
// that the Comparer and the converters use.

// ToJSON renders v, a value of Mtype ty, as JSON.
func ToJSON(ty *mtype.Type, v Value) ([]byte, error) {
	tree, err := jsonEncode(ty, v, 0)
	if err != nil {
		return nil, err
	}
	return json.Marshal(tree)
}

// FromJSON parses JSON into a value of Mtype ty. Inputs over the default
// byte budget, or nesting deeper than the value depth budget, return an
// error wrapping limits.ErrBudget.
func FromJSON(ty *mtype.Type, data []byte) (Value, error) {
	if len(data) > limits.DefaultMaxBytes {
		return nil, limits.Exceededf("value: json input is %d bytes, budget is %d",
			len(data), limits.DefaultMaxBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("value: %w", err)
	}
	return jsonDecode(ty, tree, 0)
}

func jsonEncode(ty *mtype.Type, v Value, depth int) (any, error) {
	if depth > maxJSONDepth {
		return nil, limits.Exceededf("value: json encode nesting exceeds depth budget of %d", maxJSONDepth)
	}
	if ty == nil {
		return nil, fmt.Errorf("value: nil type")
	}
	if elem, ok := mtype.ListElem(ty); ok {
		elems, err := ToSlice(v)
		if err != nil {
			return nil, err
		}
		if elem.Kind() == mtype.KindCharacter {
			runes := make([]rune, len(elems))
			for i, e := range elems {
				c, ok := e.(Char)
				if !ok {
					return nil, fmt.Errorf("value: string element is %T", e)
				}
				runes[i] = c.R
			}
			return string(runes), nil
		}
		out := make([]any, len(elems))
		for i, e := range elems {
			t, err := jsonEncode(elem, e, depth+1)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out[i] = t
		}
		return out, nil
	}
	if ty = skipRecursive(ty); ty == nil {
		return nil, fmt.Errorf("value: unbound recursive type")
	}
	switch ty.Kind() {
	case mtype.KindInteger:
		iv, ok := v.(Int)
		if !ok || iv.V == nil {
			return nil, fmt.Errorf("value: %v does not inhabit %s", v, ty)
		}
		return json.Number(iv.V.String()), nil
	case mtype.KindReal:
		rv, ok := v.(Real)
		if !ok {
			return nil, fmt.Errorf("value: %v does not inhabit %s", v, ty)
		}
		return rv.V, nil
	case mtype.KindCharacter:
		cv, ok := v.(Char)
		if !ok {
			return nil, fmt.Errorf("value: %v does not inhabit %s", v, ty)
		}
		return string(cv.R), nil
	case mtype.KindUnit:
		if _, ok := v.(Unit); !ok {
			return nil, fmt.Errorf("value: %v does not inhabit unit", v)
		}
		return nil, nil
	case mtype.KindPort:
		pv, ok := v.(Port)
		if !ok {
			return nil, fmt.Errorf("value: %v does not inhabit %s", v, ty)
		}
		return pv.Ref, nil
	case mtype.KindRecord:
		rv, ok := v.(Record)
		fields := ty.Fields()
		if !ok || len(rv.Fields) != len(fields) {
			return nil, fmt.Errorf("value: %v does not inhabit %s", v, ty)
		}
		out := make([]any, len(fields))
		for i, f := range fields {
			t, err := jsonEncode(f.Type, rv.Fields[i], depth+1)
			if err != nil {
				return nil, fmt.Errorf("field %d: %w", i, err)
			}
			out[i] = t
		}
		return out, nil
	case mtype.KindChoice:
		cv, ok := v.(Choice)
		alts := ty.Alts()
		if !ok || cv.Alt < 0 || cv.Alt >= len(alts) {
			return nil, fmt.Errorf("value: %v does not inhabit %s", v, ty)
		}
		inner, err := jsonEncode(alts[cv.Alt].Type, cv.V, depth+1)
		if err != nil {
			return nil, fmt.Errorf("alternative %d: %w", cv.Alt, err)
		}
		return map[string]any{"alt": json.Number(fmt.Sprint(cv.Alt)), "value": inner}, nil
	default:
		return nil, fmt.Errorf("value: unsupported type kind %s", ty.Kind())
	}
}

func jsonDecode(ty *mtype.Type, tree any, depth int) (Value, error) {
	if depth > maxJSONDepth {
		return nil, limits.Exceededf("value: json decode nesting exceeds depth budget of %d", maxJSONDepth)
	}
	if ty == nil {
		return nil, fmt.Errorf("value: nil type")
	}
	if elem, ok := mtype.ListElem(ty); ok {
		if s, ok := tree.(string); ok && elem.Kind() == mtype.KindCharacter {
			runes := []rune(s)
			elems := make([]Value, len(runes))
			for i, r := range runes {
				elems[i] = Char{R: r}
			}
			return FromSlice(elems), nil
		}
		arr, ok := tree.([]any)
		if !ok {
			return nil, fmt.Errorf("value: want array for list %s, got %T", ty, tree)
		}
		elems := make([]Value, len(arr))
		for i, t := range arr {
			v, err := jsonDecode(elem, t, depth+1)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			elems[i] = v
		}
		return FromSlice(elems), nil
	}
	if ty = skipRecursive(ty); ty == nil {
		return nil, fmt.Errorf("value: unbound recursive type")
	}
	switch ty.Kind() {
	case mtype.KindInteger:
		num, ok := tree.(json.Number)
		if !ok {
			return nil, fmt.Errorf("value: want number for %s, got %T", ty, tree)
		}
		n, ok := new(big.Int).SetString(num.String(), 10)
		if !ok {
			return nil, fmt.Errorf("value: %q is not an integer", num)
		}
		return Int{V: n}, nil
	case mtype.KindReal:
		num, ok := tree.(json.Number)
		if !ok {
			return nil, fmt.Errorf("value: want number for %s, got %T", ty, tree)
		}
		f, err := num.Float64()
		if err != nil {
			return nil, fmt.Errorf("value: %q: %w", num, err)
		}
		return Real{V: f}, nil
	case mtype.KindCharacter:
		s, ok := tree.(string)
		runes := []rune(s)
		if !ok || len(runes) != 1 {
			return nil, fmt.Errorf("value: want one-character string for %s, got %v", ty, tree)
		}
		return Char{R: runes[0]}, nil
	case mtype.KindUnit:
		if tree != nil {
			return nil, fmt.Errorf("value: want null for unit, got %v", tree)
		}
		return Unit{}, nil
	case mtype.KindPort:
		s, ok := tree.(string)
		if !ok {
			return nil, fmt.Errorf("value: want string for %s, got %T", ty, tree)
		}
		return Port{Ref: s}, nil
	case mtype.KindRecord:
		arr, ok := tree.([]any)
		fields := ty.Fields()
		if !ok || len(arr) != len(fields) {
			return nil, fmt.Errorf("value: want %d-element array for %s, got %v", len(fields), ty, tree)
		}
		out := make([]Value, len(fields))
		for i, f := range fields {
			v, err := jsonDecode(f.Type, arr[i], depth+1)
			if err != nil {
				return nil, fmt.Errorf("field %d (%s): %w", i, f.Name, err)
			}
			out[i] = v
		}
		return Record{Fields: out}, nil
	case mtype.KindChoice:
		alts := ty.Alts()
		if tree == nil {
			for i, a := range alts {
				if t := skipRecursive(a.Type); t != nil && t.Kind() == mtype.KindUnit {
					return Choice{Alt: i, V: Unit{}}, nil
				}
			}
			return nil, fmt.Errorf("value: null for %s, which has no unit alternative", ty)
		}
		obj, ok := tree.(map[string]any)
		if !ok {
			return nil, fmt.Errorf(`value: want {"alt": N, "value": V} for %s, got %T`, ty, tree)
		}
		num, ok := obj["alt"].(json.Number)
		if !ok {
			return nil, fmt.Errorf(`value: choice object for %s lacks numeric "alt"`, ty)
		}
		alt64, err := num.Int64()
		if err != nil || alt64 < 0 || int(alt64) >= len(alts) {
			return nil, fmt.Errorf("value: alternative %s out of range (0..%d)", num, len(alts)-1)
		}
		inner, err := jsonDecode(alts[alt64].Type, obj["value"], depth+1)
		if err != nil {
			return nil, fmt.Errorf("alternative %d: %w", alt64, err)
		}
		return Choice{Alt: int(alt64), V: inner}, nil
	default:
		return nil, fmt.Errorf("value: unsupported type kind %s", ty.Kind())
	}
}

func skipRecursive(ty *mtype.Type) *mtype.Type {
	for i := 0; ty != nil && ty.Kind() == mtype.KindRecursive; i++ {
		if i > 1<<10 {
			return nil
		}
		ty = ty.Body()
	}
	return ty
}
