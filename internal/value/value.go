// Package value defines the dynamic values that Mockingbird stubs move
// between language representations. A Value is a tree shaped like an Mtype:
// Int/Real/Char/Unit leaves under Record and Choice constructors. Values of
// recursive Mtypes (lists) are built from Choice/Record exactly as the list
// encoding μL.Choice(Unit, Record(elem, L)) prescribes, so one value model
// serves Java Vectors, C indefinite arrays, and linked lists alike.
package value

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/mtype"
)

// Value is a dynamic value. The concrete types are Int, Real, Char, Unit,
// Record, Choice, and Port.
type Value interface {
	// Kind reports the Mtype kind this value inhabits.
	Kind() mtype.Kind
	// String renders the value for diagnostics.
	String() string
}

// Int is an integer value. The magnitude is held in a big.Int so that the
// full range of every source language integer type (including uint64) is
// representable.
type Int struct {
	V *big.Int
}

// NewInt returns an Int holding v.
func NewInt(v int64) Int { return Int{V: big.NewInt(v)} }

// Kind implements Value.
func (Int) Kind() mtype.Kind { return mtype.KindInteger }

func (i Int) String() string {
	if i.V == nil {
		return "int(<nil>)"
	}
	return i.V.String()
}

// Int64 returns the value as an int64, or an error if it does not fit.
func (i Int) Int64() (int64, error) {
	if i.V == nil {
		return 0, errors.New("value: nil integer")
	}
	if !i.V.IsInt64() {
		return 0, fmt.Errorf("value: integer %s overflows int64", i.V)
	}
	return i.V.Int64(), nil
}

// Real is a floating point value.
type Real struct {
	V float64
}

// Kind implements Value.
func (Real) Kind() mtype.Kind { return mtype.KindReal }

func (r Real) String() string { return fmt.Sprintf("%g", r.V) }

// Char is a character value (one Unicode code point).
type Char struct {
	R rune
}

// Kind implements Value.
func (Char) Kind() mtype.Kind { return mtype.KindCharacter }

func (c Char) String() string { return fmt.Sprintf("%q", c.R) }

// Unit is the single value of the Unit Mtype (void / null).
type Unit struct{}

// Kind implements Value.
func (Unit) Kind() mtype.Kind { return mtype.KindUnit }

func (Unit) String() string { return "unit" }

// Record is an ordered aggregate value.
type Record struct {
	Fields []Value
}

// NewRecord returns a Record over the given field values.
func NewRecord(fields ...Value) Record {
	return Record{Fields: append([]Value(nil), fields...)}
}

// Kind implements Value.
func (Record) Kind() mtype.Kind { return mtype.KindRecord }

func (r Record) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	for i, f := range r.Fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		if f == nil {
			sb.WriteString("<nil>")
		} else {
			sb.WriteString(f.String())
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// Choice is a tagged alternative: alternative Alt of the Choice Mtype,
// carrying value V.
type Choice struct {
	Alt int
	V   Value
}

// Kind implements Value.
func (Choice) Kind() mtype.Kind { return mtype.KindChoice }

func (c Choice) String() string {
	if c.V == nil {
		return fmt.Sprintf("<%d:<nil>>", c.Alt)
	}
	return fmt.Sprintf("<%d:%s>", c.Alt, c.V)
}

// Port is a reference to a destination that accepts values: an object
// reference, a function reference, or a reply port. The Ref field is an
// opaque handle interpreted by the runtime that produced it (a local
// dispatcher entry or a network object key).
type Port struct {
	Ref string
}

// Kind implements Value.
func (Port) Kind() mtype.Kind { return mtype.KindPort }

func (p Port) String() string { return "port(" + p.Ref + ")" }

// Null returns the null case of an optional (Choice(Unit, τ)) value.
func Null() Choice { return Choice{Alt: 0, V: Unit{}} }

// Some wraps v as the non-null case of an optional value.
func Some(v Value) Choice { return Choice{Alt: 1, V: v} }

// ListNil returns the empty list value under the list encoding.
func ListNil() Choice { return Choice{Alt: 0, V: Unit{}} }

// ListCons prepends head to tail under the list encoding.
func ListCons(head, tail Value) Choice {
	return Choice{Alt: 1, V: NewRecord(head, tail)}
}

// FromSlice builds a list value (under the list encoding) from a slice of
// element values, preserving order.
func FromSlice(elems []Value) Value {
	out := Value(ListNil())
	for i := len(elems) - 1; i >= 0; i-- {
		out = ListCons(elems[i], out)
	}
	return out
}

// ToSlice flattens a list value into a slice of its elements. It returns an
// error if v is not a well-formed list encoding.
func ToSlice(v Value) ([]Value, error) {
	var out []Value
	for {
		c, ok := v.(Choice)
		if !ok {
			return nil, fmt.Errorf("value: list node is %T, want Choice", v)
		}
		switch c.Alt {
		case 0:
			if _, ok := c.V.(Unit); !ok {
				return nil, fmt.Errorf("value: list nil carries %T, want Unit", c.V)
			}
			return out, nil
		case 1:
			cons, ok := c.V.(Record)
			if !ok || len(cons.Fields) != 2 {
				return nil, fmt.Errorf("value: list cons is %T, want 2-field Record", c.V)
			}
			out = append(out, cons.Fields[0])
			v = cons.Fields[1]
		default:
			return nil, fmt.Errorf("value: list alternative %d out of range", c.Alt)
		}
	}
}

// Check verifies that v inhabits Mtype ty, following the structure of both
// and unfolding recursive nodes as needed.
func Check(v Value, ty *mtype.Type) error {
	return check(v, ty, 0)
}

const maxCheckDepth = 1 << 20

func check(v Value, ty *mtype.Type, depth int) error {
	if depth > maxCheckDepth {
		return errors.New("value: check depth exceeded (cyclic value?)")
	}
	if ty == nil {
		return errors.New("value: nil type")
	}
	if v == nil {
		return errors.New("value: nil value")
	}
	for ty.Kind() == mtype.KindRecursive {
		ty = ty.Body()
		if ty == nil {
			return errors.New("value: unbound recursive type")
		}
	}
	switch ty.Kind() {
	case mtype.KindInteger:
		iv, ok := v.(Int)
		if !ok {
			return fmt.Errorf("value: %s does not inhabit %s", v, ty)
		}
		if iv.V == nil {
			return errors.New("value: nil integer")
		}
		lo, hi := ty.IntegerRange()
		if iv.V.Cmp(lo) < 0 || iv.V.Cmp(hi) > 0 {
			return fmt.Errorf("value: %s outside range [%s..%s]", iv.V, lo, hi)
		}
		return nil
	case mtype.KindCharacter:
		if _, ok := v.(Char); !ok {
			return fmt.Errorf("value: %s does not inhabit %s", v, ty)
		}
		return nil
	case mtype.KindReal:
		if _, ok := v.(Real); !ok {
			return fmt.Errorf("value: %s does not inhabit %s", v, ty)
		}
		return nil
	case mtype.KindUnit:
		if _, ok := v.(Unit); !ok {
			return fmt.Errorf("value: %s does not inhabit unit", v)
		}
		return nil
	case mtype.KindRecord:
		rv, ok := v.(Record)
		if !ok {
			return fmt.Errorf("value: %s does not inhabit %s", v, ty)
		}
		fields := ty.Fields()
		if len(rv.Fields) != len(fields) {
			return fmt.Errorf("value: record has %d fields, type wants %d", len(rv.Fields), len(fields))
		}
		for i, f := range fields {
			if err := check(rv.Fields[i], f.Type, depth+1); err != nil {
				return fmt.Errorf("field %d (%s): %w", i, f.Name, err)
			}
		}
		return nil
	case mtype.KindChoice:
		cv, ok := v.(Choice)
		if !ok {
			return fmt.Errorf("value: %s does not inhabit %s", v, ty)
		}
		alts := ty.Alts()
		if cv.Alt < 0 || cv.Alt >= len(alts) {
			return fmt.Errorf("value: alternative %d out of range (0..%d)", cv.Alt, len(alts)-1)
		}
		if err := check(cv.V, alts[cv.Alt].Type, depth+1); err != nil {
			return fmt.Errorf("alternative %d (%s): %w", cv.Alt, alts[cv.Alt].Name, err)
		}
		return nil
	case mtype.KindPort:
		if _, ok := v.(Port); !ok {
			return fmt.Errorf("value: %s does not inhabit %s", v, ty)
		}
		return nil
	default:
		return fmt.Errorf("value: unsupported type kind %s", ty.Kind())
	}
}

// Equal reports deep equality of two values.
func Equal(a, b Value) bool {
	switch av := a.(type) {
	case Int:
		bv, ok := b.(Int)
		return ok && av.V != nil && bv.V != nil && av.V.Cmp(bv.V) == 0
	case Real:
		bv, ok := b.(Real)
		return ok && av.V == bv.V
	case Char:
		bv, ok := b.(Char)
		return ok && av.R == bv.R
	case Unit:
		_, ok := b.(Unit)
		return ok
	case Record:
		bv, ok := b.(Record)
		if !ok || len(av.Fields) != len(bv.Fields) {
			return false
		}
		for i := range av.Fields {
			if !Equal(av.Fields[i], bv.Fields[i]) {
				return false
			}
		}
		return true
	case Choice:
		bv, ok := b.(Choice)
		return ok && av.Alt == bv.Alt && Equal(av.V, bv.V)
	case Port:
		bv, ok := b.(Port)
		return ok && av.Ref == bv.Ref
	default:
		return false
	}
}
