package value

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/mtype"
)

func roundTrip(t *testing.T, ty *mtype.Type, v Value, wantJSON string) {
	t.Helper()
	data, err := ToJSON(ty, v)
	if err != nil {
		t.Fatalf("ToJSON: %v", err)
	}
	if wantJSON != "" && string(data) != wantJSON {
		t.Errorf("ToJSON = %s, want %s", data, wantJSON)
	}
	back, err := FromJSON(ty, data)
	if err != nil {
		t.Fatalf("FromJSON(%s): %v", data, err)
	}
	if !Equal(v, back) {
		t.Errorf("round trip: %v → %s → %v", v, data, back)
	}
}

func TestJSONLeaves(t *testing.T) {
	roundTrip(t, mtype.NewIntegerBits(32, true), NewInt(-7), "-7")
	roundTrip(t, mtype.NewFloat64(), Real{V: 2.5}, "2.5")
	roundTrip(t, mtype.NewCharacter(mtype.RepUnicode), Char{R: 'λ'}, `"λ"`)
	roundTrip(t, mtype.Unit(), Unit{}, "null")
	roundTrip(t, mtype.NewPort(mtype.Unit()), Port{Ref: "obj/9"}, `"obj/9"`)
}

func TestJSONBigInteger(t *testing.T) {
	// A uint64-range value that does not fit in int64 survives the trip.
	big64 := new(big.Int).SetUint64(1 << 63)
	ty := mtype.NewIntegerBits(64, false)
	roundTrip(t, ty, Int{V: big64}, "9223372036854775808")
}

func TestJSONRecordAndChoice(t *testing.T) {
	rec := mtype.RecordOf(mtype.NewIntegerBits(16, true), mtype.NewFloat32())
	roundTrip(t, rec, NewRecord(NewInt(3), Real{V: 1.5}), "[3,1.5]")

	ch := mtype.ChoiceOf(mtype.Unit(), mtype.NewIntegerBits(8, false))
	roundTrip(t, ch, Choice{Alt: 1, V: NewInt(200)}, `{"alt":1,"value":200}`)
	roundTrip(t, ch, Choice{Alt: 0, V: Unit{}}, "")

	// null decodes as the unit alternative of an optional.
	v, err := FromJSON(mtype.NewOptional(mtype.NewFloat64()), []byte("null"))
	if err != nil || !Equal(v, Null()) {
		t.Errorf("null optional = %v, %v", v, err)
	}
}

func TestJSONStringsAndLists(t *testing.T) {
	str := mtype.NewList(mtype.NewCharacter(mtype.RepUnicode))
	roundTrip(t, str, FromSlice([]Value{Char{R: 'h'}, Char{R: 'i'}}), `"hi"`)
	roundTrip(t, str, ListNil(), `""`)

	ints := mtype.NewList(mtype.NewIntegerBits(32, true))
	roundTrip(t, ints, FromSlice([]Value{NewInt(1), NewInt(2), NewInt(3)}), "[1,2,3]")

	// Nested: a list of records carrying strings.
	item := mtype.RecordOf(str, mtype.NewIntegerBits(32, true))
	roundTrip(t, mtype.NewList(item),
		FromSlice([]Value{
			NewRecord(FromSlice([]Value{Char{R: 'a'}}), NewInt(1)),
			NewRecord(ListNil(), NewInt(2)),
		}),
		`[["a",1],["",2]]`)
}

func TestJSONErrors(t *testing.T) {
	cases := []struct {
		ty   *mtype.Type
		in   string
		want string
	}{
		{mtype.NewIntegerBits(32, true), `"x"`, "want number"},
		{mtype.NewIntegerBits(32, true), `1.5`, "not an integer"},
		{mtype.NewCharacter(mtype.RepUnicode), `"ab"`, "one-character"},
		{mtype.RecordOf(mtype.Unit()), `[null,null]`, "1-element array"},
		{mtype.ChoiceOf(mtype.Unit(), mtype.Unit()), `{"alt":5,"value":null}`, "out of range"},
		{mtype.ChoiceOf(mtype.NewFloat64()), `null`, "no unit alternative"},
	}
	for _, c := range cases {
		if _, err := FromJSON(c.ty, []byte(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("FromJSON(%s, %s) error = %v, want %q", c.ty, c.in, err, c.want)
		}
	}
}
