// Package proto holds the CDR building blocks shared by the admin-plane
// protocols of the mbird daemons (the broker in internal/broker, the
// interop gateway in internal/gateway). Every protocol payload is CDR,
// marshaled by package wire against small protocol Mtypes — the daemons
// speak the same wire format as the stubs they compile — and this
// package fixes the two primitive encodings both sides agree on: a
// string is the §3.2 recursive list encoding over Unicode characters,
// and a counter is a 64-bit signed integer.
package proto

import (
	"fmt"

	"repro/internal/mtype"
	"repro/internal/value"
	"repro/internal/wire"
)

// Protocol Mtypes. A string is List(Character(unicode)); an int is a
// 64-bit signed Integer.
var (
	// StrT is the protocol string Mtype.
	StrT = mtype.NewList(mtype.NewCharacter(mtype.RepUnicode))
	// IntT is the protocol counter Mtype.
	IntT = mtype.NewIntegerBits(64, true)
)

// Record builds a protocol record Mtype from field Mtypes.
func Record(types ...*mtype.Type) *mtype.Type { return mtype.RecordOf(types...) }

// Str encodes a Go string as a protocol string value.
func Str(s string) value.Value {
	runes := []rune(s)
	elems := make([]value.Value, len(runes))
	for i, r := range runes {
		elems[i] = value.Char{R: r}
	}
	return value.FromSlice(elems)
}

// GoStr decodes a protocol string value.
func GoStr(v value.Value) (string, error) {
	elems, err := value.ToSlice(v)
	if err != nil {
		return "", err
	}
	runes := make([]rune, len(elems))
	for i, e := range elems {
		c, ok := e.(value.Char)
		if !ok {
			return "", fmt.Errorf("proto: string element is %T", e)
		}
		runes[i] = c.R
	}
	return string(runes), nil
}

// Int encodes a counter as a protocol integer value.
func Int(n int64) value.Value { return value.NewInt(n) }

// GoInt decodes a protocol integer value.
func GoInt(v value.Value) (int64, error) {
	iv, ok := v.(value.Int)
	if !ok {
		return 0, fmt.Errorf("proto: integer field is %T", v)
	}
	return iv.Int64()
}

// MarshalStrings CDR-encodes a record of strings against ty.
func MarshalStrings(ty *mtype.Type, ss ...string) ([]byte, error) {
	fields := make([]value.Value, len(ss))
	for i, s := range ss {
		fields[i] = Str(s)
	}
	return wire.Marshal(ty, value.NewRecord(fields...))
}

// UnmarshalStrings decodes a record of n strings.
func UnmarshalStrings(ty *mtype.Type, data []byte, n int) ([]string, error) {
	v, err := wire.Unmarshal(ty, data)
	if err != nil {
		return nil, err
	}
	return RecordStrings(v, n)
}

// RecordStrings extracts n string fields from a decoded record value.
func RecordStrings(v value.Value, n int) ([]string, error) {
	rec, ok := v.(value.Record)
	if !ok || len(rec.Fields) != n {
		return nil, fmt.Errorf("proto: want record of %d strings, got %v", n, v)
	}
	out := make([]string, n)
	for i, f := range rec.Fields {
		s, err := GoStr(f)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Ints is a convenience reader over a decoded counter record: it
// extracts int64 fields by index, accumulating the first error, so
// protocol clients can decode twenty-field stats records without
// twenty error branches.
type Ints struct {
	rec value.Record
	err error
}

// NewInts wraps a decoded record for indexed counter access. A non-record
// value yields a reader whose every Get reports the shape error.
func NewInts(v value.Value) *Ints {
	rec, ok := v.(value.Record)
	if !ok {
		return &Ints{err: fmt.Errorf("proto: want record, got %T", v)}
	}
	return &Ints{rec: rec}
}

// Get returns field i as an int64, recording (and then repeating) the
// first decode error.
func (r *Ints) Get(i int) int64 {
	if r.err != nil {
		return 0
	}
	if i < 0 || i >= len(r.rec.Fields) {
		r.err = fmt.Errorf("proto: record has %d fields, want index %d", len(r.rec.Fields), i)
		return 0
	}
	n, err := GoInt(r.rec.Fields[i])
	if err != nil {
		r.err = err
		return 0
	}
	return n
}

// Err returns the first error any Get hit.
func (r *Ints) Err() error { return r.err }
