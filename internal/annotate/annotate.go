// Package annotate applies programmer annotations to Stype declarations.
// The paper's prototype collected annotations through interactive GUI
// panels (Figure 7) and, at scale, through "a scripting technique that
// allows annotations, worked out in detail with representative classes, to
// be applied in batch mode to a much larger set" (§5). This package
// implements that script language.
//
// A script is a sequence of lines:
//
//	# comment
//	annotate <path> <attr> [<attr> ...]
//
// where <path> selects nodes (see stype.ParsePath; wildcards allowed) and
// each <attr> is one of:
//
//	nonnull             reference is never null
//	noalias             reference introduces no alias
//	in | out | inout    parameter direction
//	length=N            static array length
//	length-from=NAME    runtime array length in sibling parameter NAME
//	range=LO..HI        integer range override
//	char | int          integral type holds characters / integers
//	repertoire=NAME     ascii, latin1, ucs2, unicode
//	byvalue | byref     class passed by value / by reference
//	collection-of=TYPE  ordered collection of TYPE elements
//	element-nonnull     collection elements are never null
//	ignore              drop this field or method from the Mtype
package annotate

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"repro/internal/stype"
)

// ParseAttrs parses attribute words into an annotation.
func ParseAttrs(words []string) (stype.Ann, error) {
	var ann stype.Ann
	if len(words) == 0 {
		return ann, fmt.Errorf("annotate: no attributes")
	}
	setMode := func(m stype.Mode) error {
		if ann.Mode != stype.ModeUnset {
			return fmt.Errorf("annotate: conflicting parameter modes")
		}
		ann.Mode = m
		return nil
	}
	for _, w := range words {
		key, val := w, ""
		if i := strings.IndexByte(w, '='); i >= 0 {
			key, val = w[:i], w[i+1:]
		}
		switch key {
		case "nonnull":
			ann.NonNull = true
		case "noalias":
			ann.NoAlias = true
		case "in":
			if err := setMode(stype.ModeIn); err != nil {
				return ann, err
			}
		case "out":
			if err := setMode(stype.ModeOut); err != nil {
				return ann, err
			}
		case "inout":
			if err := setMode(stype.ModeInOut); err != nil {
				return ann, err
			}
		case "length":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return ann, fmt.Errorf("annotate: invalid length %q", val)
			}
			ann.FixedLen = n
		case "length-from":
			if val == "" {
				return ann, fmt.Errorf("annotate: length-from requires a parameter name")
			}
			ann.LengthFrom = val
		case "range":
			parts := strings.SplitN(val, "..", 2)
			if len(parts) != 2 {
				return ann, fmt.Errorf("annotate: range must be LO..HI, got %q", val)
			}
			lo, ok1 := new(big.Int).SetString(parts[0], 10)
			hi, ok2 := new(big.Int).SetString(parts[1], 10)
			if !ok1 || !ok2 || lo.Cmp(hi) > 0 {
				return ann, fmt.Errorf("annotate: invalid range %q", val)
			}
			ann.Range = &stype.RangeAnn{Lo: lo.String(), Hi: hi.String()}
		case "char":
			t := true
			ann.AsChar = &t
		case "int":
			f := false
			ann.AsChar = &f
		case "repertoire":
			switch val {
			case "ascii", "latin1", "ucs2", "unicode":
				ann.Repertoire = val
			default:
				return ann, fmt.Errorf("annotate: unknown repertoire %q", val)
			}
		case "byvalue":
			t := true
			ann.ByValue = &t
		case "byref":
			f := false
			ann.ByValue = &f
		case "collection-of":
			if val == "" {
				return ann, fmt.Errorf("annotate: collection-of requires a type name")
			}
			ann.CollectionOf = val
		case "element-nonnull":
			ann.ElementNonNull = true
		case "ignore":
			ann.Ignore = true
		default:
			return ann, fmt.Errorf("annotate: unknown attribute %q", w)
		}
	}
	if ann.AsChar != nil && *ann.AsChar && ann.Range != nil {
		return ann, fmt.Errorf("annotate: char and range are mutually exclusive")
	}
	return ann, nil
}

// Apply merges the annotation into every node selected by path, returning
// the number of nodes annotated.
func Apply(u *stype.Universe, path string, ann stype.Ann) (int, error) {
	p, err := stype.ParsePath(path)
	if err != nil {
		return 0, err
	}
	sels, err := p.Select(u)
	if err != nil {
		return 0, err
	}
	for _, sel := range sels {
		switch {
		case sel.Method != nil:
			if !onlyIgnore(ann) {
				return 0, fmt.Errorf("annotate: %s selects a method; only `ignore` applies to methods", sel.Where)
			}
			sel.Method.Ann = sel.Method.Ann.Merge(ann)
		case sel.Node != nil:
			sel.Node.Ann = sel.Node.Ann.Merge(ann)
		}
	}
	return len(sels), nil
}

func onlyIgnore(a stype.Ann) bool {
	return a == stype.Ann{Ignore: true}
}

// ScriptResult summarizes a script run.
type ScriptResult struct {
	// Lines is the number of annotate directives executed.
	Lines int
	// Applied is the total number of nodes annotated.
	Applied int
}

// ApplyScript runs an annotation script against a universe.
func ApplyScript(u *stype.Universe, script string) (ScriptResult, error) {
	var res ScriptResult
	for lineNo, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		words := strings.Fields(line)
		if words[0] != "annotate" {
			return res, fmt.Errorf("annotate: line %d: expected `annotate`, got %q", lineNo+1, words[0])
		}
		if len(words) < 3 {
			return res, fmt.Errorf("annotate: line %d: usage: annotate <path> <attr>...", lineNo+1)
		}
		ann, err := ParseAttrs(words[2:])
		if err != nil {
			return res, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		n, err := Apply(u, words[1], ann)
		if err != nil {
			return res, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		res.Lines++
		res.Applied += n
	}
	return res, nil
}
