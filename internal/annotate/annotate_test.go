package annotate

import (
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/javaparse"
	"repro/internal/stype"
)

const fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`

const figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`

// section34CScript is the §3.4 annotation set for the C side: start and
// end are out parameters; pts is an array whose length is count.
const section34CScript = `
# Figure 2 fitter annotations (paper §3.4)
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`

// section34JavaScript is the §3.4 annotation set for the Java side.
const section34JavaScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate Point byvalue
annotate Line byvalue
`

func TestSection34CScript(t *testing.T) {
	u := cparse.MustParse(fitterC)
	res, err := ApplyScript(u, section34CScript)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 3 || res.Applied != 3 {
		t.Errorf("result = %+v", res)
	}
	fitter := u.Lookup("fitter").Type
	start := fitter.Params[2].Type
	if start.Ann.Mode != stype.ModeOut || !start.Ann.NonNull {
		t.Errorf("start ann = %+v", start.Ann)
	}
	pts := fitter.Params[0].Type
	if pts.Ann.LengthFrom != "count" {
		t.Errorf("pts ann = %+v", pts.Ann)
	}
}

func TestSection34JavaScript(t *testing.T) {
	u := javaparse.MustParse(figure1Java)
	res, err := ApplyScript(u, section34JavaScript)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 5 {
		t.Errorf("applied = %d, want 5", res.Applied)
	}
	line := u.Lookup("Line").Type
	for i := range line.Fields {
		ann := line.Fields[i].Type.Ann
		if !ann.NonNull || !ann.NoAlias {
			t.Errorf("field %s ann = %+v", line.Fields[i].Name, ann)
		}
	}
	pv := u.Lookup("PointVector").Type
	if pv.Ann.CollectionOf != "Point" || !pv.Ann.ElementNonNull {
		t.Errorf("PointVector ann = %+v", pv.Ann)
	}
}

func TestWildcardBatchAnnotation(t *testing.T) {
	// §5: annotations worked out on representative classes applied in
	// batch to a larger set.
	u := javaparse.MustParse(`
		class A { B ref; int x; }
		class B { A ref; }
		class C { B ref; }
	`)
	n, err := Apply(u, "*.ref", stype.Ann{NonNull: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("annotated %d nodes, want 3", n)
	}
	for _, name := range []string{"A", "B", "C"} {
		cls := u.Lookup(name).Type
		if !cls.Fields[0].Type.Ann.NonNull {
			t.Errorf("%s.ref not annotated", name)
		}
	}
}

func TestParseAttrs(t *testing.T) {
	ann, err := ParseAttrs([]string{"nonnull", "noalias", "out", "length=4"})
	if err != nil {
		t.Fatal(err)
	}
	if !ann.NonNull || !ann.NoAlias || ann.Mode != stype.ModeOut || ann.FixedLen != 4 {
		t.Errorf("ann = %+v", ann)
	}
}

func TestParseAttrsRange(t *testing.T) {
	ann, err := ParseAttrs([]string{"range=0..4294967295"})
	if err != nil {
		t.Fatal(err)
	}
	if ann.Range == nil || ann.Range.Lo != "0" || ann.Range.Hi != "4294967295" {
		t.Errorf("range = %+v", ann.Range)
	}
	ann, err = ParseAttrs([]string{"range=-5..5"})
	if err != nil || ann.Range.Lo != "-5" {
		t.Errorf("negative range: %+v, %v", ann.Range, err)
	}
}

func TestParseAttrsCharIntRepertoire(t *testing.T) {
	ann, _ := ParseAttrs([]string{"char", "repertoire=latin1"})
	if ann.AsChar == nil || !*ann.AsChar || ann.Repertoire != "latin1" {
		t.Errorf("ann = %+v", ann)
	}
	ann, _ = ParseAttrs([]string{"int"})
	if ann.AsChar == nil || *ann.AsChar {
		t.Errorf("int ann = %+v", ann)
	}
}

func TestParseAttrsByValueByRef(t *testing.T) {
	ann, _ := ParseAttrs([]string{"byvalue"})
	if ann.ByValue == nil || !*ann.ByValue {
		t.Errorf("byvalue = %+v", ann)
	}
	ann, _ = ParseAttrs([]string{"byref"})
	if ann.ByValue == nil || *ann.ByValue {
		t.Errorf("byref = %+v", ann)
	}
}

func TestParseAttrsErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"bogus"},
		{"in", "out"},
		{"length=0"},
		{"length=x"},
		{"length-from="},
		{"range=5..1"},
		{"range=abc"},
		{"repertoire=klingon"},
		{"collection-of="},
		{"char", "range=0..9"},
	}
	for _, words := range bad {
		if _, err := ParseAttrs(words); err == nil {
			t.Errorf("ParseAttrs(%v) succeeded", words)
		}
	}
}

func TestMethodIgnore(t *testing.T) {
	u := javaparse.MustParse(`class C { void helper() {} int x; }`)
	n, err := Apply(u, "C.helper", stype.Ann{Ignore: true})
	if err != nil || n != 1 {
		t.Fatalf("Apply = %d, %v", n, err)
	}
	if !u.Lookup("C").Type.Methods[0].Ann.Ignore {
		t.Error("method not marked ignore")
	}
}

func TestMethodRejectsOtherAttrs(t *testing.T) {
	u := javaparse.MustParse(`class C { void helper() {} }`)
	if _, err := Apply(u, "C.helper", stype.Ann{NonNull: true}); err == nil {
		t.Error("nonnull on a method should fail")
	}
}

func TestScriptErrors(t *testing.T) {
	u := cparse.MustParse(fitterC)
	cases := []struct {
		script string
		want   string
	}{
		{"frobnicate fitter out", "annotate"},
		{"annotate fitter", "usage"},
		{"annotate fitter.nosuch out", "matches nothing"},
		{"annotate fitter.start bogus", "unknown attribute"},
	}
	for _, c := range cases {
		_, err := ApplyScript(u, c.script)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ApplyScript(%q) error = %v, want %q", c.script, err, c.want)
		}
	}
}

func TestScriptCommentsAndBlanks(t *testing.T) {
	u := cparse.MustParse(fitterC)
	res, err := ApplyScript(u, "\n# only comments\n\n   \n")
	if err != nil || res.Lines != 0 {
		t.Errorf("res = %+v, err = %v", res, err)
	}
}

func TestAnnotationsAccumulate(t *testing.T) {
	u := cparse.MustParse(fitterC)
	if _, err := Apply(u, "fitter.start", stype.Ann{Mode: stype.ModeOut}); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(u, "fitter.start", stype.Ann{NonNull: true}); err != nil {
		t.Fatal(err)
	}
	ann := u.Lookup("fitter").Type.Params[2].Type.Ann
	if ann.Mode != stype.ModeOut || !ann.NonNull {
		t.Errorf("ann = %+v", ann)
	}
}
