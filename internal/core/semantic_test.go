package core

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

// TestSemanticLineConversion reproduces the §6 future-work example the
// paper gives for programmer-supplied conversions: "perhaps one line is
// represented as a slope/intercept pair, and another line as two points,
// and the programmer wishes to convert between the two representations.
// Dealing with such information requires the programmer to provide
// hand-written conversions which are then integrated with the automated
// structural ones."
//
// The two Line declarations are structurally incomparable (two reals vs.
// four); the registered hooks make the pair match, and the surrounding
// structural machinery (the method request/reply records) still converts
// automatically.
func TestSemanticLineConversion(t *testing.T) {
	s := NewSession()
	// Caller: lines as slope/intercept.
	if err := s.LoadJava("analytic", `
		class SlopeLine { double slope; double intercept; }
		interface Clipper { SlopeLine clip(int window, SlopeLine l); }
	`); err != nil {
		t.Fatal(err)
	}
	// Callee: lines as two points.
	if err := s.LoadJava("geometric", `
		class Pt { double x; double y; }
		class SegLine { Pt a; Pt b; }
		interface Clipper { SegLine clip(int window, SegLine l); }
	`); err != nil {
		t.Fatal(err)
	}
	script := `
annotate SegLine.a nonnull noalias
annotate SegLine.b nonnull noalias
annotate Clipper.clip.l nonnull
annotate Clipper.clip.return nonnull
`
	if _, err := s.Annotate("geometric", script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("analytic", `
annotate Clipper.clip.l nonnull
annotate Clipper.clip.return nonnull
`); err != nil {
		t.Fatal(err)
	}

	// Without hooks the pair must NOT match (2 reals vs 4 reals).
	v, err := s.Compare("analytic", "Clipper", "geometric", "Clipper")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation == RelEquivalent {
		t.Fatal("structurally different lines matched without hooks")
	}

	// The hand-written conversions: slope/intercept ↔ the segment through
	// x=0 and x=1.
	s.RegisterSemantic("SlopeLine", "SegLine", "slope→seg", func(v value.Value) (value.Value, error) {
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != 2 {
			return nil, fmt.Errorf("want slope/intercept record, got %s", v)
		}
		m := rec.Fields[0].(value.Real).V
		b := rec.Fields[1].(value.Real).V
		pt := func(x float64) value.Value {
			return value.NewRecord(value.Real{V: x}, value.Real{V: m*x + b})
		}
		return value.NewRecord(pt(0), pt(1)), nil
	})
	s.RegisterSemantic("SegLine", "SlopeLine", "seg→slope", func(v value.Value) (value.Value, error) {
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != 2 {
			return nil, fmt.Errorf("want two-point record, got %s", v)
		}
		a := rec.Fields[0].(value.Record)
		b := rec.Fields[1].(value.Record)
		x1, y1 := a.Fields[0].(value.Real).V, a.Fields[1].(value.Real).V
		x2, y2 := b.Fields[0].(value.Real).V, b.Fields[1].(value.Real).V
		if x1 == x2 {
			return nil, fmt.Errorf("vertical line has no slope form")
		}
		m := (y2 - y1) / (x2 - x1)
		return value.NewRecord(value.Real{V: m}, value.Real{V: y1 - m*x1}), nil
	})

	// With the hooks registered, the interfaces match.
	v, err = s.Compare("analytic", "Clipper", "geometric", "Clipper")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelEquivalent {
		t.Fatalf("relation with hooks = %s\n%s", v.Relation, v.Explain)
	}

	// And the stub composes the hook with the structural pieces: the int
	// window converts structurally, the line semantically.
	var gotWindow value.Value
	target := TargetFunc(func(in value.Value) (value.Value, error) {
		rec := in.(value.Record)
		gotWindow = rec.Fields[0]
		// The geometric implementation returns the line unchanged.
		return value.NewRecord(rec.Fields[1]), nil
	})
	for _, engine := range []Engine{EngineCompiled, EngineInterpreted} {
		stub, err := s.NewCallStub("analytic", "Clipper", "geometric", "Clipper", engine, target)
		if err != nil {
			t.Fatal(err)
		}
		// clip(window=3, line: y = 2x + 1).
		out, err := stub.Invoke(value.NewRecord(
			value.NewInt(3),
			value.NewRecord(value.Real{V: 2}, value.Real{V: 1}),
		))
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(gotWindow, value.NewInt(3)) {
			t.Errorf("window = %s", gotWindow)
		}
		// The reply passed through seg form and back: y = 2x + 1 again.
		rec := out.(value.Record)
		want := value.NewRecord(value.Real{V: 2}, value.Real{V: 1})
		if !value.Equal(rec.Fields[0], want) {
			t.Errorf("engine %d: returned line = %s, want %s", engine, rec.Fields[0], want)
		}
	}
}

func TestSemanticHookMissingFunction(t *testing.T) {
	s := NewSession()
	if err := s.LoadJava("a", `class L { double m; double b; }`); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("b", `class L { double x1; double y1; double x2; double y2; }`); err != nil {
		t.Fatal(err)
	}
	// Register the pair on the comparer but sabotage the hook table by
	// registering under a different name via direct struct manipulation:
	// simplest path — register, then verify a stub built with a missing
	// hook name fails cleanly. Use a fresh session sharing no hook.
	s.RegisterSemantic("L", "L", "missing-hook", nil)
	delete(s.hooks, "missing-hook")
	target := TargetFunc(func(in value.Value) (value.Value, error) { return value.Record{}, nil })
	if _, err := s.NewMessageStub("a", "L", "b", "L", EngineCompiled, target); err == nil {
		t.Error("stub with unregistered hook compiled")
	}
}
