package core

import (
	"context"
	"fmt"

	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

// wireShapes computes the on-the-wire request and reply record Mtypes of
// a function declaration: the request is the I fields (the reply port
// travels implicitly as the connection, as in GIOP), the reply is the O
// record.
func (s *Session) wireShapes(universe, decl string) (req, rep *mtype.Type, err error) {
	mt, err := s.Mtype(universe, decl)
	if err != nil {
		return nil, nil, err
	}
	fullReq, rep, err := callShape(mt)
	if err != nil {
		return nil, nil, err
	}
	fields := fullReq.Fields()
	req = mtype.NewRecord(fields[:len(fields)-1]...)
	return req, rep, nil
}

// ExportCall registers a callee target on an orb server under key.
// Incoming requests are unmarshaled per the declaration's request Mtype,
// handed to the target, and the outputs marshaled back — the server half
// of a network-enabled stub.
func (s *Session) ExportCall(srv *orb.Server, key, universe, decl string, target Target) error {
	req, rep, err := s.wireShapes(universe, decl)
	if err != nil {
		return err
	}
	dec := wire.NewDecoder(req)
	enc := wire.NewEncoder(rep)
	srv.Register(key, func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		inputs, err := dec.Unmarshal(body)
		if err != nil {
			return nil, fmt.Errorf("unmarshal request: %w", err)
		}
		outputs, err := target.Invoke(inputs)
		if err != nil {
			return nil, err
		}
		return enc.Marshal(outputs)
	})
	return nil
}

// NewRemoteTarget returns a Target that forwards invocations to an
// exported object — the client half of a network-enabled stub. The
// declaration must be the same (or an equivalent) declaration the server
// exported, in this session's universes; its Mtype defines the wire
// format.
func (s *Session) NewRemoteTarget(client *orb.Client, key, universe, decl string) (Target, error) {
	req, rep, err := s.wireShapes(universe, decl)
	if err != nil {
		return nil, err
	}
	enc := wire.NewEncoder(req)
	dec := wire.NewDecoder(rep)
	return TargetFunc(func(inputs value.Value) (value.Value, error) {
		body, err := enc.Marshal(inputs)
		if err != nil {
			return nil, fmt.Errorf("core: marshal request: %w", err)
		}
		reply, err := client.Invoke(key, 0, body)
		if err != nil {
			return nil, err
		}
		outputs, err := dec.Unmarshal(reply)
		if err != nil {
			return nil, fmt.Errorf("core: unmarshal reply: %w", err)
		}
		return outputs, nil
	}), nil
}

// ExportMessageSink registers a receiver for one-way messages of the
// declaration's Mtype: each arriving message is unmarshaled and handed to
// the target (whose result is discarded) — the generated "receive" stub
// of the §5 messaging case study.
func (s *Session) ExportMessageSink(srv *orb.Server, key, universe, decl string, target Target) error {
	mt, err := s.Mtype(universe, decl)
	if err != nil {
		return err
	}
	dec := wire.NewDecoder(mt)
	srv.Register(key, func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		msg, err := dec.Unmarshal(body)
		if err != nil {
			return nil, fmt.Errorf("unmarshal message: %w", err)
		}
		if _, err := target.Invoke(msg); err != nil {
			return nil, err
		}
		return nil, nil
	})
	return nil
}

// NewRemoteMessageTarget returns a Target that sends values of the
// declaration's Mtype as one-way messages — the generated "send" stub.
func (s *Session) NewRemoteMessageTarget(client *orb.Client, key, universe, decl string) (Target, error) {
	mt, err := s.Mtype(universe, decl)
	if err != nil {
		return nil, err
	}
	enc := wire.NewEncoder(mt)
	return TargetFunc(func(msg value.Value) (value.Value, error) {
		body, err := enc.Marshal(msg)
		if err != nil {
			return nil, fmt.Errorf("core: marshal message: %w", err)
		}
		if err := client.Send(key, 0, body); err != nil {
			return nil, err
		}
		return value.Record{}, nil
	}), nil
}
