package core

import (
	"fmt"

	"repro/internal/bind"
	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/convert"
	"repro/internal/jheap"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/stype"
	"repro/internal/value"
)

// Engine selects how coercion plans execute.
type Engine uint8

// Available engines.
const (
	// EngineCompiled executes closure-compiled plans — the "generated
	// stub" model, and the default.
	EngineCompiled Engine = iota
	// EngineInterpreted walks the plan per value; the §6-perf benchmarks
	// compare it against the compiled engine.
	EngineInterpreted
)

func (s *Session) newConverter(engine Engine, p *plan.Plan) (convert.Converter, error) {
	if engine == EngineInterpreted {
		return convert.NewInterpreterHooks(p, s.hooks), nil
	}
	return convert.CompileHooks(p, s.hooks)
}

// Target is the callee side of a stub: it accepts the callee-shaped input
// record (the Mtype I fields) and returns the callee-shaped output record
// (the Mtype O fields).
type Target interface {
	Invoke(inputs value.Value) (value.Value, error)
}

// TargetFunc adapts a function to Target.
type TargetFunc func(value.Value) (value.Value, error)

// Invoke implements Target.
func (f TargetFunc) Invoke(inputs value.Value) (value.Value, error) { return f(inputs) }

// NewCTarget wraps a registered C function implementation: each
// invocation marshals into a fresh arena (a fresh stack/heap extent, as a
// real call would use), calls impl, and collects the outputs.
func NewCTarget(binder *bind.C, decl *stype.Decl, impl bind.CFunc) Target {
	return TargetFunc(func(inputs value.Value) (value.Value, error) {
		mem := cmem.NewArena()
		return binder.Call(decl, impl, mem, inputs)
	})
}

// NewJTarget wraps a Java method implementation operating on a persistent
// heap.
func NewJTarget(binder *bind.J, decl *stype.Decl, method string, impl bind.JFunc, heap *jheap.Heap) Target {
	return TargetFunc(func(inputs value.Value) (value.Value, error) {
		return binder.Call(decl, method, impl, heap, inputs)
	})
}

// CallStub is a two-way local stub between a caller declaration A and a
// callee declaration B whose Mtypes are equivalent function ports: it
// converts A-shaped inputs to B-shaped inputs, invokes the target, and
// converts B-shaped outputs back (§4's generated adapter).
type CallStub struct {
	reqConv convert.Converter // A request record → B request record
	repConv convert.Converter // B reply record → A reply record
	target  Target
	// nbInputs is the number of B request fields before the reply port.
	nbInputs int
}

// callShape extracts the request record and reply record of a lowered
// function port, port(Record(I..., port(Record(O...)))).
func callShape(mt *mtype.Type) (req, rep *mtype.Type, err error) {
	u := unfoldM(mt)
	if u == nil || u.Kind() != mtype.KindPort {
		return nil, nil, fmt.Errorf("core: declaration does not lower to a function port (got %s)", u.Kind())
	}
	req = unfoldM(u.Elem())
	if req.Kind() != mtype.KindRecord || len(req.Fields()) == 0 {
		return nil, nil, fmt.Errorf("core: function port element is not a request record")
	}
	last := req.Fields()[len(req.Fields())-1].Type
	lastU := unfoldM(last)
	if lastU.Kind() != mtype.KindPort {
		return nil, nil, fmt.Errorf("core: request record has no reply port (oneway method? use a message stub)")
	}
	rep = unfoldM(lastU.Elem())
	if rep.Kind() != mtype.KindRecord {
		return nil, nil, fmt.Errorf("core: reply port element is not a record")
	}
	return req, rep, nil
}

func unfoldM(t *mtype.Type) *mtype.Type {
	for t != nil && t.Kind() == mtype.KindRecursive {
		t = t.Body()
	}
	return t
}

// NewCallStub compiles a call stub from the pair of declarations — the
// tool's central operation. Both declarations must lower to equivalent
// function ports (a C function, or a single-method interface/class).
func (s *Session) NewCallStub(universeA, declA, universeB, declB string, engine Engine, target Target) (*CallStub, error) {
	mtA, err := s.Mtype(universeA, declA)
	if err != nil {
		return nil, err
	}
	mtB, err := s.Mtype(universeB, declB)
	if err != nil {
		return nil, err
	}
	return s.newCallStubFromMtypes(mtA, mtB, engine, target)
}

func (s *Session) newCallStubFromMtypes(mtA, mtB *mtype.Type, engine Engine, target Target) (*CallStub, error) {
	reqA, repA, err := callShape(mtA)
	if err != nil {
		return nil, fmt.Errorf("core: caller: %w", err)
	}
	reqB, repB, err := callShape(mtB)
	if err != nil {
		return nil, fmt.Errorf("core: callee: %w", err)
	}

	c := s.newComparer()
	m, ok := c.Equivalent(mtA, mtB)
	if !ok {
		return nil, fmt.Errorf("core: declarations are not equivalent:\n%s",
			c.Explain(mtA, mtB, compare.ModeEqual))
	}
	reqPlan, err := plan.BuildFor(m, reqA, reqB)
	if err != nil {
		return nil, fmt.Errorf("core: request plan: %w", err)
	}
	// The reply flows callee→caller, so build the reverse match for it.
	m2, ok := c.Equivalent(repB, repA)
	if !ok {
		return nil, fmt.Errorf("core: reply records not equivalent in reverse:\n%s",
			c.Explain(repB, repA, compare.ModeEqual))
	}
	repPlan, err := plan.BuildFor(m2, repB, repA)
	if err != nil {
		return nil, fmt.Errorf("core: reply plan: %w", err)
	}

	reqConv, err := s.newConverter(engine, reqPlan)
	if err != nil {
		return nil, err
	}
	repConv, err := s.newConverter(engine, repPlan)
	if err != nil {
		return nil, err
	}
	return &CallStub{
		reqConv:  reqConv,
		repConv:  repConv,
		target:   target,
		nbInputs: len(reqB.Fields()) - 1,
	}, nil
}

// Invoke calls through the stub: inputs is the caller-shaped input record
// (the A-side I fields, in declaration order); the result is the
// caller-shaped output record (out/inout parameters in order, then the
// return value).
func (cs *CallStub) Invoke(inputs value.Value) (value.Value, error) {
	inRec, ok := inputs.(value.Record)
	if !ok {
		return nil, fmt.Errorf("core: inputs must be a record, got %T", inputs)
	}
	// Complete the request record with the reply port (a local token; the
	// conversion passes ports through).
	full := value.Record{Fields: append(append([]value.Value(nil), inRec.Fields...), value.Port{Ref: "reply:local"})}
	bReq, err := cs.reqConv.Convert(full)
	if err != nil {
		return nil, fmt.Errorf("core: request conversion: %w", err)
	}
	bRec, ok := bReq.(value.Record)
	if !ok || len(bRec.Fields) != cs.nbInputs+1 {
		return nil, fmt.Errorf("core: converted request has wrong shape")
	}
	bInputs := value.Record{Fields: bRec.Fields[:cs.nbInputs]}
	bOutputs, err := cs.target.Invoke(bInputs)
	if err != nil {
		return nil, err
	}
	aOutputs, err := cs.repConv.Convert(bOutputs)
	if err != nil {
		return nil, fmt.Errorf("core: reply conversion: %w", err)
	}
	return aOutputs, nil
}

// MessageStub is a one-way send stub between two message declarations
// (oneway methods, or any pair of by-value message types): it converts
// the caller-shaped message to the callee shape and hands it to the
// target. It is the "custom send/receive stub" of the §5 collaborative
// messaging case study.
type MessageStub struct {
	conv   convert.Converter
	target Target
}

// NewMessageStub compiles a one-way message stub between two by-value
// declarations (the message types themselves).
func (s *Session) NewMessageStub(universeA, declA, universeB, declB string, engine Engine, target Target) (*MessageStub, error) {
	mtA, err := s.Mtype(universeA, declA)
	if err != nil {
		return nil, err
	}
	mtB, err := s.Mtype(universeB, declB)
	if err != nil {
		return nil, err
	}
	// Messages flow one way only, so a subtype relation suffices when the
	// types are not fully equivalent (§3: "If the Mtype of the first type
	// is a subtype of the second, Mockingbird can generate a one-way
	// converter from the first to the second").
	c := s.newComparer()
	m, ok := c.Equivalent(mtA, mtB)
	if !ok {
		m, ok = c.Subtype(mtA, mtB)
	}
	if !ok {
		return nil, fmt.Errorf("core: message types are not equivalent or in the subtype relation:\n%s",
			c.Explain(mtA, mtB, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		return nil, err
	}
	conv, err := s.newConverter(engine, p)
	if err != nil {
		return nil, err
	}
	return &MessageStub{conv: conv, target: target}, nil
}

// Send converts and delivers one message.
func (ms *MessageStub) Send(msg value.Value) error {
	converted, err := ms.conv.Convert(msg)
	if err != nil {
		return fmt.Errorf("core: message conversion: %w", err)
	}
	_, err = ms.target.Invoke(converted)
	return err
}

// MethodDecl synthesizes a function declaration from one method of a
// class or interface, so that method pairs can be stubbed individually
// (the per-method stubs of the VisualAge and Notes case studies). The
// synthesized declaration is registered in the same universe under
// "class::method".
func (s *Session) MethodDecl(universe, class, method string) (string, error) {
	u := s.universes[universe]
	if u == nil {
		return "", fmt.Errorf("core: no universe %q", universe)
	}
	d := u.Lookup(class)
	if d == nil {
		return "", fmt.Errorf("core: no declaration %q", class)
	}
	name := class + "::" + method
	if u.Lookup(name) != nil {
		return name, nil
	}
	for i := range d.Type.Methods {
		m := &d.Type.Methods[i]
		if m.Name != method {
			continue
		}
		fn := &stype.Type{Kind: stype.KFunc, Params: m.Params, Result: m.Result}
		if _, err := u.Add(name, fn); err != nil {
			return "", err
		}
		// The lowering cache keys on declarations, so adding one is safe,
		// but rebuild the lowerer to keep behavior predictable.
		return name, nil
	}
	return "", fmt.Errorf("core: %s has no method %q", class, method)
}
