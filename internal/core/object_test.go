package core

import (
	"testing"

	"repro/internal/value"
)

// TestObjectStubPairsMethods pairs a Java interface with an IDL
// interface whose methods and parameters are declared in a different
// order; the comparer pairs them by invocation shape.
func TestObjectStubPairsMethods(t *testing.T) {
	s := NewSession()
	if err := s.LoadJava("java", `
		interface Account {
			double balance();
			void deposit(double amount, short teller);
			int audit(long since);
		}
	`); err != nil {
		t.Fatal(err)
	}
	// IDL side: methods in a different order, deposit's parameters
	// swapped.
	if err := s.LoadIDL("idl", `
		interface Account {
			long audit(in long long since);
			void deposit(in short teller, in double amount);
			double balance();
		};
	`); err != nil {
		t.Fatal(err)
	}

	var depositGot value.Value
	targets := MethodTargets{
		"balance": TargetFunc(func(in value.Value) (value.Value, error) {
			return value.NewRecord(value.Real{V: 99.5}), nil
		}),
		"deposit": TargetFunc(func(in value.Value) (value.Value, error) {
			depositGot = in
			return value.NewRecord(), nil
		}),
		"audit": TargetFunc(func(in value.Value) (value.Value, error) {
			return value.NewRecord(value.NewInt(3)), nil
		}),
	}
	stub, err := s.NewObjectStub("java", "Account", "idl", "Account", EngineCompiled, targets)
	if err != nil {
		t.Fatal(err)
	}

	// All three Java methods paired with the right IDL methods.
	for _, m := range []string{"balance", "deposit", "audit"} {
		got, ok := stub.Pairing(m)
		if !ok || got != m {
			t.Errorf("pairing[%s] = %q, %v", m, got, ok)
		}
	}

	out, err := stub.Invoke("balance", value.NewRecord())
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out, value.NewRecord(value.Real{V: 99.5})) {
		t.Errorf("balance = %s", out)
	}

	// deposit(amount=12.5, teller=7) arrives as (teller, amount) on the
	// IDL side.
	if _, err := stub.Invoke("deposit", value.NewRecord(value.Real{V: 12.5}, value.NewInt(7))); err != nil {
		t.Fatal(err)
	}
	want := value.NewRecord(value.NewInt(7), value.Real{V: 12.5})
	if !value.Equal(depositGot, want) {
		t.Errorf("deposit inputs = %s, want %s", depositGot, want)
	}

	out, err = stub.Invoke("audit", value.NewRecord(value.NewInt(1000)))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out, value.NewRecord(value.NewInt(3))) {
		t.Errorf("audit = %s", out)
	}

	if _, err := stub.Invoke("nosuch", value.NewRecord()); err == nil {
		t.Error("unknown method accepted")
	}
	names := stub.MethodNames()
	if len(names) != 3 {
		t.Errorf("methods = %v", names)
	}
}

func TestObjectStubOnewayMethod(t *testing.T) {
	s := NewSession()
	if err := s.LoadIDL("a", `
		interface Chan {
			oneway void send(in long payload);
			long ask(in long q);
		};
	`); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadIDL("b", `
		interface Chan {
			long ask(in long q);
			oneway void send(in long payload);
		};
	`); err != nil {
		t.Fatal(err)
	}
	var sent value.Value
	targets := MethodTargets{
		"send": TargetFunc(func(in value.Value) (value.Value, error) {
			sent = in
			return value.Record{}, nil
		}),
		"ask": TargetFunc(func(in value.Value) (value.Value, error) {
			return value.NewRecord(value.NewInt(42)), nil
		}),
	}
	stub, err := s.NewObjectStub("a", "Chan", "b", "Chan", EngineCompiled, targets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Invoke("send", value.NewRecord(value.NewInt(9))); err != nil {
		t.Fatal(err)
	}
	if !value.Equal(sent, value.NewRecord(value.NewInt(9))) {
		t.Errorf("sent = %s", sent)
	}
	out, err := stub.Invoke("ask", value.NewRecord(value.NewInt(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out, value.NewRecord(value.NewInt(42))) {
		t.Errorf("ask = %s", out)
	}
}

func TestObjectStubSingleMethodCollapses(t *testing.T) {
	s := fitterSession(t)
	target := TargetFunc(func(in value.Value) (value.Value, error) {
		return value.NewRecord(
			value.NewRecord(value.Real{V: 0}, value.Real{V: 0}),
			value.NewRecord(value.Real{V: 1}, value.Real{V: 1}),
		), nil
	})
	// A single-method interface's port element is the invocation record
	// itself; targets are keyed by its tag.
	stub, err := s.NewObjectStub("java", "JavaIdeal", "c", "fitter", EngineCompiled,
		MethodTargets{"": target, "fitter": target})
	if err != nil {
		t.Fatal(err)
	}
	out, err := stub.Invoke(stub.MethodNames()[0], value.NewRecord(pointsValue(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(value.Record); !ok {
		t.Errorf("out = %T", out)
	}
}

func TestObjectStubMissingTarget(t *testing.T) {
	s := NewSession()
	if err := s.LoadIDL("a", `interface I { long f(in long x); };`); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadIDL("b", `interface I { long f(in long x); };`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewObjectStub("a", "I", "b", "I", EngineCompiled, MethodTargets{}); err == nil {
		t.Error("missing target accepted")
	}
}
