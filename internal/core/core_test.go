package core

import (
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/orb"
	"repro/internal/value"
)

// The Figure 1/2/5 declarations, verbatim from the paper.
const (
	fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`
	figure1Java = `
public class Point {
    public Point(float x, float y) { this.x = x; this.y = y; }
    private float x;
    private float y;
}
public class Line {
    public Line(Point s, Point e) { start = s; end = e; }
    private Point start;
    private Point end;
}
public class PointVector extends java.util.Vector;
public interface JavaIdeal {
    Line fitter(PointVector pts);
}
`
	fitterCScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`
	figure1JavaScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`
)

// fitterSession loads and annotates both sides of the §2 example.
func fitterSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession()
	if err := s.LoadC("c", fitterC, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", figure1Java); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", fitterCScript); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("java", figure1JavaScript); err != nil {
		t.Fatal(err)
	}
	return s
}

// cFitterImpl fits the bounding-box diagonal, reading raw arena memory as
// compiled C would.
func cFitterImpl(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts := cmem.Addr(args[0])
	count := int(int32(args[1]))
	start := cmem.Addr(args[2])
	end := cmem.Addr(args[3])
	var minX, minY, maxX, maxY float32
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	for _, w := range []struct {
		at cmem.Addr
		v  float32
	}{{start, minX}, {start + 4, minY}, {end, maxX}, {end + 4, maxY}} {
		if err := mem.WriteF32(w.at, w.v); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

// pointsValue builds the Java-side pts list value.
func pointsValue(coords ...float64) value.Value {
	var elems []value.Value
	for i := 0; i+1 < len(coords); i += 2 {
		elems = append(elems, value.NewRecord(value.Real{V: coords[i]}, value.Real{V: coords[i+1]}))
	}
	return value.FromSlice(elems)
}

// TestPipelineFigure6 runs the paper's whole pipeline: parse both
// declarations, annotate, compare (equivalent), generate a stub, and call
// the C fitter from the Java side, getting a Line back.
func TestPipelineFigure6(t *testing.T) {
	s := fitterSession(t)

	verdict, err := s.Compare("java", "JavaIdeal", "c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Relation != RelEquivalent {
		t.Fatalf("relation = %s; %s", verdict.Relation, verdict.Explain)
	}

	binder := bind.NewC(s.Universe("c"), cmem.ILP32)
	target := NewCTarget(binder, s.Universe("c").Lookup("fitter"), cFitterImpl)

	for _, engine := range []Engine{EngineCompiled, EngineInterpreted} {
		stub, err := s.NewCallStub("java", "JavaIdeal", "c", "fitter", engine, target)
		if err != nil {
			t.Fatal(err)
		}
		out, err := stub.Invoke(value.NewRecord(pointsValue(1, 5, 3, 2, 2, 7)))
		if err != nil {
			t.Fatal(err)
		}
		// Java-side outputs: Record(Line) with Line = Record(start, end).
		rec, ok := out.(value.Record)
		if !ok || len(rec.Fields) != 1 {
			t.Fatalf("outputs = %s", out)
		}
		line, ok := rec.Fields[0].(value.Record)
		if !ok || len(line.Fields) != 2 {
			t.Fatalf("line = %s", rec.Fields[0])
		}
		wantStart := value.NewRecord(value.Real{V: 1}, value.Real{V: 2})
		wantEnd := value.NewRecord(value.Real{V: 3}, value.Real{V: 7})
		if !value.Equal(line.Fields[0], wantStart) || !value.Equal(line.Fields[1], wantEnd) {
			t.Errorf("engine %d: line = %s", engine, line)
		}
	}
}

// TestSection34MtypeString reproduces the §3.4 Mtype rendering for both
// declarations.
func TestSection34MtypeString(t *testing.T) {
	s := fitterSession(t)
	cTy, err := s.Mtype("c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	jTy, err := s.Mtype("java", "JavaIdeal")
	if err != nil {
		t.Fatal(err)
	}
	for _, rendered := range []string{cTy.String(), jTy.String()} {
		if !strings.HasPrefix(rendered, "port(record(μL1.choice(unit, record(record(real(24,8), real(24,8)), L1))") {
			t.Errorf("Mtype = %s", rendered)
		}
	}
}

// TestFitterOverNetwork runs the same pair as a network-enabled stub:
// the C side is exported on an orb server, the Java side invokes through
// a remote target with CDR marshaling in between.
func TestFitterOverNetwork(t *testing.T) {
	server := fitterSession(t)
	binder := bind.NewC(server.Universe("c"), cmem.ILP32)
	target := NewCTarget(binder, server.Universe("c").Lookup("fitter"), cFitterImpl)

	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := server.ExportCall(srv, "fitter", "c", "fitter", target); err != nil {
		t.Fatal(err)
	}

	client := fitterSession(t)
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	remote, err := client.NewRemoteTarget(conn, "fitter", "c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	stub, err := client.NewCallStub("java", "JavaIdeal", "c", "fitter", EngineCompiled, remote)
	if err != nil {
		t.Fatal(err)
	}
	out, err := stub.Invoke(value.NewRecord(pointsValue(0, 0, 10, 10, 5, -3)))
	if err != nil {
		t.Fatal(err)
	}
	line := out.(value.Record).Fields[0].(value.Record)
	wantStart := value.NewRecord(value.Real{V: 0}, value.Real{V: -3})
	wantEnd := value.NewRecord(value.Real{V: 10}, value.Real{V: 10})
	if !value.Equal(line.Fields[0], wantStart) || !value.Equal(line.Fields[1], wantEnd) {
		t.Errorf("line = %s", line)
	}
}

// TestCompareWithIDL checks the Figure 3 interoperation path: both the
// C-friendly and Java-friendly IDLs match the Java ideal declaration.
func TestCompareWithIDL(t *testing.T) {
	s := fitterSession(t)
	const figure3a = `
interface JavaFriendly {
  struct Point { float x; float y; };
  struct Line { Point start; Point end; };
  typedef sequence<Point> PointVector;
  Line fitter(in PointVector pts);
};
`
	const figure3b = `
interface CFriendly {
  typedef float Point[2];
  typedef sequence<Point> pointseq;
  void fitter(in pointseq pts, in long count,
              out Point start, out Point end);
};
`
	if err := s.LoadIDL("idlJ", figure3a); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadIDL("idlC", figure3b); err != nil {
		t.Fatal(err)
	}
	// The C-friendly IDL passes a redundant count; consume it as the
	// sequence length so the shapes agree.
	if _, err := s.Annotate("idlC", "annotate CFriendly.fitter.pts length-from=count"); err != nil {
		t.Fatal(err)
	}

	v, err := s.Compare("java", "JavaIdeal", "idlJ", "JavaFriendly")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelEquivalent {
		t.Errorf("JavaIdeal vs JavaFriendly: %s\n%s", v.Relation, v.Explain)
	}
	v, err = s.Compare("c", "fitter", "idlC", "CFriendly")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelEquivalent {
		t.Errorf("fitter vs CFriendly: %s\n%s", v.Relation, v.Explain)
	}
	v, err = s.Compare("java", "JavaIdeal", "idlC", "CFriendly")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelEquivalent {
		t.Errorf("JavaIdeal vs CFriendly: %s\n%s", v.Relation, v.Explain)
	}
}

func TestCompareMismatchExplains(t *testing.T) {
	s := NewSession()
	if err := s.LoadC("c", `void f(int x);`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", `interface I { void f(double x); }`); err != nil {
		t.Fatal(err)
	}
	v, err := s.Compare("c", "f", "java", "I")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelNone {
		t.Fatalf("relation = %s", v.Relation)
	}
	if v.Explain == "" || v.Explain == "no mismatch recorded" {
		t.Errorf("Explain = %q", v.Explain)
	}
}

func TestSubtypeVerdict(t *testing.T) {
	s := NewSession()
	if err := s.LoadC("a", `struct S { signed char v; };`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadC("b", `struct S { int v; };`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	v, err := s.Compare("a", "S", "b", "S")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelSubtypeAB {
		t.Errorf("relation = %s, want subtype", v.Relation)
	}
	v, err = s.Compare("b", "S", "a", "S")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelSubtypeBA {
		t.Errorf("relation = %s, want supertype", v.Relation)
	}
}

func TestSessionErrors(t *testing.T) {
	s := NewSession()
	if err := s.LoadC("c", `void f(int x);`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadC("c", `void g(int x);`, cmem.ILP32); err == nil {
		t.Error("duplicate universe accepted")
	}
	if err := s.LoadC("", `void g(int x);`, cmem.ILP32); err == nil {
		t.Error("empty universe name accepted")
	}
	if _, err := s.Mtype("ghost", "f"); err == nil {
		t.Error("unknown universe accepted")
	}
	if _, err := s.Annotate("ghost", ""); err == nil {
		t.Error("annotate on unknown universe accepted")
	}
	if _, err := s.Compare("c", "ghost", "c", "f"); err == nil {
		t.Error("unknown decl accepted")
	}
	if err := s.LoadC("bad", `void f(`, cmem.ILP32); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestDeclNames(t *testing.T) {
	s := fitterSession(t)
	names, err := s.DeclNames("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "fitter" || names[1] != "point" {
		t.Errorf("names = %v", names)
	}
}

func TestMethodDecl(t *testing.T) {
	s := fitterSession(t)
	name, err := s.MethodDecl("java", "JavaIdeal", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if name != "JavaIdeal::fitter" {
		t.Errorf("name = %q", name)
	}
	// Idempotent.
	again, err := s.MethodDecl("java", "JavaIdeal", "fitter")
	if err != nil || again != name {
		t.Errorf("second call = %q, %v", again, err)
	}
	// The synthesized function compares like the interface itself.
	v, err := s.Compare("java", name, "c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelEquivalent {
		t.Errorf("relation = %s", v.Relation)
	}
	if _, err := s.MethodDecl("java", "JavaIdeal", "nosuch"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMessageStubLocal(t *testing.T) {
	s := NewSession()
	if err := s.LoadJava("java", `
		class ChatMsg { int seq; double ts; }
	`); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadC("c", `
		struct chat_msg { int seq; double ts; };
		struct chat_msg2 { double ts; int seq; };
	`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	var received value.Value
	sink := TargetFunc(func(v value.Value) (value.Value, error) {
		received = v
		return value.Record{}, nil
	})
	stub, err := s.NewMessageStub("java", "ChatMsg", "c", "chat_msg2", EngineCompiled, sink)
	if err != nil {
		t.Fatal(err)
	}
	msg := value.NewRecord(value.NewInt(7), value.Real{V: 1.25})
	if err := stub.Send(msg); err != nil {
		t.Fatal(err)
	}
	// Fields commuted into the C declaration order.
	want := value.NewRecord(value.Real{V: 1.25}, value.NewInt(7))
	if !value.Equal(received, want) {
		t.Errorf("received = %s, want %s", received, want)
	}
}

func TestMessageOverNetwork(t *testing.T) {
	s := NewSession()
	if err := s.LoadJava("java", `class Ping { int seq; }`); err != nil {
		t.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := make(chan value.Value, 1)
	sink := TargetFunc(func(v value.Value) (value.Value, error) {
		got <- v
		return value.Record{}, nil
	})
	if err := s.ExportMessageSink(srv, "ping", "java", "Ping", sink); err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sender, err := s.NewRemoteMessageTarget(conn, "ping", "java", "Ping")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Invoke(value.NewRecord(value.NewInt(3))); err != nil {
		t.Fatal(err)
	}
	v := <-got
	if !value.Equal(v, value.NewRecord(value.NewInt(3))) {
		t.Errorf("received = %s", v)
	}
}

func TestRulesAffectSession(t *testing.T) {
	s := fitterSession(t)
	raw := compare.Rules{Cache: true} // no isomorphism rules
	s.SetRules(raw)
	v, err := s.Compare("java", "JavaIdeal", "c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation == RelEquivalent {
		t.Error("fitter pair matched without associativity — ablation broken")
	}
	s.SetRules(compare.DefaultRules())
	v, err = s.Compare("java", "JavaIdeal", "c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != RelEquivalent {
		t.Error("default rules no longer match")
	}
}
