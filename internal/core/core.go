// Package core is the Mockingbird tool façade: the parse → annotate →
// compare → generate pipeline of Figure 6 as a library. A Session holds
// named universes of declarations (one per loaded source), applies
// annotation scripts, lowers declarations to Mtypes, runs the Comparer,
// and builds stubs: local call stubs between language bindings,
// network-enabled stubs over the orb, and one-way message stubs.
package core

import (
	"fmt"
	"sort"

	"repro/internal/annotate"
	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/convert"
	"repro/internal/cparse"
	"repro/internal/goparse"
	"repro/internal/idlparse"
	"repro/internal/javaparse"
	"repro/internal/lower"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/stype"
)

// Session is one interactive session with the tool (the state a project
// file captures). It is not safe for concurrent use.
type Session struct {
	universes map[string]*stype.Universe
	lowerers  map[string]*lower.Lowerer
	order     []string
	rules     compare.Rules
	// semantics holds programmer-registered conversions (§6): tag pair →
	// hook name, plus the hook functions for the execution engines.
	semantics [][3]string
	hooks     convert.Hooks
}

// NewSession returns an empty session using the default isomorphism
// rules.
func NewSession() *Session {
	return &Session{
		universes: make(map[string]*stype.Universe),
		lowerers:  make(map[string]*lower.Lowerer),
		rules:     compare.DefaultRules(),
		hooks:     make(convert.Hooks),
	}
}

// RegisterSemantic installs a programmer-supplied conversion (§6): values
// whose Mtypes carry tagA convert to those carrying tagB through fn,
// composed with the structural conversions around them. Tags are the
// declaration names the lowering attaches to composite Mtypes. The
// registration is directional; register both directions for two-way
// stubs.
func (s *Session) RegisterSemantic(tagA, tagB, hookName string, fn convert.Hook) {
	s.semantics = append(s.semantics, [3]string{tagA, tagB, hookName})
	s.hooks[hookName] = fn
}

// newComparer builds a comparer with the session's rules and semantic
// registrations applied.
func (s *Session) newComparer() *compare.Comparer {
	c := compare.NewComparer(s.rules)
	for _, reg := range s.semantics {
		c.RegisterSemantic(reg[0], reg[1], reg[2])
	}
	return c
}

// SetRules replaces the comparison rule set (used by the ablation
// benchmarks).
func (s *Session) SetRules(r compare.Rules) { s.rules = r }

// LoadC parses C declarations into a universe named name.
func (s *Session) LoadC(name, src string, model cmem.Model) error {
	cfg := cparse.Config{}
	if model == cmem.LP64 {
		cfg.Model = cparse.ModelLP64
	}
	u, err := cparse.Parse(name, src, cfg)
	if err != nil {
		return err
	}
	return s.addUniverse(name, u)
}

// LoadJava parses Java declarations into a universe named name.
func (s *Session) LoadJava(name, src string) error {
	u, err := javaparse.Parse(name, src)
	if err != nil {
		return err
	}
	return s.addUniverse(name, u)
}

// LoadIDL parses CORBA IDL declarations into a universe named name.
func (s *Session) LoadIDL(name, src string) error {
	u, err := idlparse.Parse(name, src)
	if err != nil {
		return err
	}
	return s.addUniverse(name, u)
}

// LoadGo parses Go declarations into a universe named name.
func (s *Session) LoadGo(name, src string) error {
	u, err := goparse.Parse(name, src)
	if err != nil {
		return err
	}
	return s.addUniverse(name, u)
}

// AddUniverse installs an already-built universe (used by the project
// loader and the workload synthesizer).
func (s *Session) AddUniverse(name string, u *stype.Universe) error {
	return s.addUniverse(name, u)
}

func (s *Session) addUniverse(name string, u *stype.Universe) error {
	if name == "" {
		return fmt.Errorf("core: empty universe name")
	}
	if u == nil {
		return fmt.Errorf("core: nil universe")
	}
	if _, dup := s.universes[name]; dup {
		return fmt.Errorf("core: universe %q already loaded", name)
	}
	s.universes[name] = u
	s.lowerers[name] = lower.New(u)
	s.order = append(s.order, name)
	return nil
}

// Universe returns a loaded universe, or nil.
func (s *Session) Universe(name string) *stype.Universe { return s.universes[name] }

// Universes lists loaded universe names in load order.
func (s *Session) Universes() []string { return append([]string(nil), s.order...) }

// Annotate runs an annotation script against a universe. Annotations
// change lowering, so the universe's Mtype cache is reset.
func (s *Session) Annotate(universe, script string) (annotate.ScriptResult, error) {
	u := s.universes[universe]
	if u == nil {
		return annotate.ScriptResult{}, fmt.Errorf("core: no universe %q", universe)
	}
	res, err := annotate.ApplyScript(u, script)
	if err != nil {
		return res, err
	}
	s.lowerers[universe] = lower.New(u)
	return res, nil
}

// Mtype lowers a declaration to its Mtype.
func (s *Session) Mtype(universe, decl string) (*mtype.Type, error) {
	l := s.lowerers[universe]
	if l == nil {
		return nil, fmt.Errorf("core: no universe %q", universe)
	}
	return l.Decl(decl)
}

// Relation is the comparer's verdict on a pair of declarations.
type Relation uint8

// Possible verdicts.
const (
	// RelNone: the declarations do not match; no stub can be generated.
	RelNone Relation = iota
	// RelEquivalent: two-way converters can be generated.
	RelEquivalent
	// RelSubtypeAB: a one-way converter A→B can be generated.
	RelSubtypeAB
	// RelSubtypeBA: a one-way converter B→A can be generated.
	RelSubtypeBA
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case RelEquivalent:
		return "equivalent"
	case RelSubtypeAB:
		return "subtype (left of right)"
	case RelSubtypeBA:
		return "supertype (right of left)"
	default:
		return "no match"
	}
}

// Verdict is the result of comparing two declarations.
type Verdict struct {
	Relation Relation
	// Match is the witnessing match (nil when Relation is RelNone).
	Match *compare.Match
	// Explain describes the mismatch when Relation is RelNone.
	Explain string
	// Steps is the number of comparison steps performed.
	Steps int
}

// Compare lowers both declarations and decides their relation, preferring
// equivalence, then A<:B, then B<:A — the order in which Mockingbird can
// offer stubs (§3: two-way converter, else one-way).
func (s *Session) Compare(universeA, declA, universeB, declB string) (*Verdict, error) {
	mtA, err := s.Mtype(universeA, declA)
	if err != nil {
		return nil, err
	}
	mtB, err := s.Mtype(universeB, declB)
	if err != nil {
		return nil, err
	}
	c := s.newComparer()
	if m, ok := c.Equivalent(mtA, mtB); ok {
		return &Verdict{Relation: RelEquivalent, Match: m, Steps: c.Steps()}, nil
	}
	if m, ok := c.Subtype(mtA, mtB); ok {
		return &Verdict{Relation: RelSubtypeAB, Match: m, Steps: c.Steps()}, nil
	}
	if m, ok := c.Subtype(mtB, mtA); ok {
		return &Verdict{Relation: RelSubtypeBA, Match: m, Steps: c.Steps()}, nil
	}
	return &Verdict{
		Relation: RelNone,
		Explain:  c.Explain(mtA, mtB, compare.ModeEqual),
		Steps:    c.Steps(),
	}, nil
}

// BuildConverter builds and closure-compiles the coercion plan witnessed
// by a verdict, with the session's semantic hooks resolved. The converter
// runs in the direction the relation supports: A→B for RelEquivalent and
// RelSubtypeAB, B→A for RelSubtypeBA (the match was taken in that
// direction). The returned converter is safe for concurrent use.
func (s *Session) BuildConverter(v *Verdict) (*plan.Plan, convert.Converter, error) {
	if v == nil || v.Match == nil {
		return nil, nil, fmt.Errorf("core: verdict carries no match to build from")
	}
	p, err := plan.Build(v.Match)
	if err != nil {
		return nil, nil, err
	}
	c, err := convert.CompileHooks(p, s.hooks)
	if err != nil {
		return nil, nil, err
	}
	return p, c, nil
}

// DeclNames lists the declarations of a universe, sorted.
func (s *Session) DeclNames(universe string) ([]string, error) {
	u := s.universes[universe]
	if u == nil {
		return nil, fmt.Errorf("core: no universe %q", universe)
	}
	names := u.Names()
	sort.Strings(names)
	return names, nil
}
