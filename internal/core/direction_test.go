package core

import (
	"testing"

	"repro/internal/bind"
	"repro/internal/jheap"
	"repro/internal/value"
)

// TestCCallsJavaDirection runs a stub in the reverse direction of the
// fitter example: C-side code is the caller, a Java method the callee
// (the VisualAge trial bridges both ways between the Java environment and
// the C++ engine).
func TestCCallsJavaDirection(t *testing.T) {
	s := NewSession()
	if err := s.LoadC("c", `double mean(double xs[], int n);`, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", "annotate mean.xs length-from=n"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", `
		class Stats {
			double mean(double[] xs) { return 0; }
		}
	`); err != nil {
		t.Fatal(err)
	}
	jFn, err := s.MethodDecl("java", "Stats", "mean")
	if err != nil {
		t.Fatal(err)
	}

	// The Java implementation, operating on the heap through the binding.
	heap := jheap.NewHeap()
	jbinder := bind.NewJ(s.Universe("java"))
	impl := func(h *jheap.Heap, args []jheap.Slot) (jheap.Slot, error) {
		n, err := h.ArrayLen(args[0].R)
		if err != nil {
			return jheap.Slot{}, err
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sl, err := h.PrimArrayAt(args[0].R, i)
			if err != nil {
				return jheap.Slot{}, err
			}
			sum += sl.F
		}
		if n == 0 {
			return jheap.FloatSlot(0), nil
		}
		return jheap.FloatSlot(sum / float64(n)), nil
	}
	target := NewJTarget(jbinder, s.Universe("java").Lookup("Stats"), "mean", impl, heap)

	// The C side is the caller: its declaration shapes the inputs.
	stub, err := s.NewCallStub("c", "mean", "java", jFn, EngineCompiled, target)
	if err != nil {
		t.Fatal(err)
	}
	xs := value.FromSlice([]value.Value{
		value.Real{V: 2}, value.Real{V: 4}, value.Real{V: 9},
	})
	out, err := stub.Invoke(value.NewRecord(xs))
	if err != nil {
		t.Fatal(err)
	}
	rec := out.(value.Record)
	if len(rec.Fields) != 1 || !value.Equal(rec.Fields[0], value.Real{V: 5}) {
		t.Errorf("mean = %s, want 5", out)
	}
}

// TestMessageStubSubtype checks the §3 one-way-converter case: a message
// whose Mtype is a strict subtype of the receiver's still gets a send
// stub.
func TestMessageStubSubtype(t *testing.T) {
	s := NewSession()
	if err := s.LoadJava("narrow", `class Evt { byte code; float w; }`); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("wide", `class Evt { int code; double w; }`); err != nil {
		t.Fatal(err)
	}
	var got value.Value
	sink := TargetFunc(func(v value.Value) (value.Value, error) {
		got = v
		return value.Record{}, nil
	})
	stub, err := s.NewMessageStub("narrow", "Evt", "wide", "Evt", EngineCompiled, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := stub.Send(value.NewRecord(value.NewInt(-5), value.Real{V: 1.5})); err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.NewRecord(value.NewInt(-5), value.Real{V: 1.5})) {
		t.Errorf("received = %s", got)
	}

	// The reverse direction must fail: wide does not flow into narrow.
	if _, err := s.NewMessageStub("wide", "Evt", "narrow", "Evt", EngineCompiled, sink); err == nil {
		t.Error("widening message direction accepted")
	}
}
