package core

import (
	"fmt"
	"sort"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
)

// ObjectStub bundles per-method stubs for a pair of multi-method
// class/interface declarations: the comparer's Choice alternative mapping
// decides which caller method corresponds to which callee method (§3.3's
// port(Choice(τ1…τn)) object model), and each pair gets its own call or
// message stub.
type ObjectStub struct {
	// calls maps caller-side method names to their stubs.
	calls map[string]*CallStub
	// messages maps caller-side oneway method names to message stubs.
	messages map[string]*MessageStub
	// pairing maps caller-side method names to callee-side names.
	pairing map[string]string
}

// MethodTargets supplies the callee implementation for each callee-side
// method name.
type MethodTargets map[string]Target

// NewObjectStub compiles stubs for every method of an equivalent pair of
// object declarations. Each caller method is paired with the callee
// method its invocation Mtype matches; targets must cover every paired
// callee method.
func (s *Session) NewObjectStub(universeA, declA, universeB, declB string, engine Engine, targets MethodTargets) (*ObjectStub, error) {
	mtA, err := s.Mtype(universeA, declA)
	if err != nil {
		return nil, err
	}
	mtB, err := s.Mtype(universeB, declB)
	if err != nil {
		return nil, err
	}
	c := s.newComparer()
	m, ok := c.Equivalent(mtA, mtB)
	if !ok {
		return nil, fmt.Errorf("core: object declarations are not equivalent:\n%s",
			c.Explain(mtA, mtB, compare.ModeEqual))
	}
	uA, uB := unfoldM(mtA), unfoldM(mtB)
	if uA.Kind() != mtype.KindPort || uB.Kind() != mtype.KindPort {
		return nil, fmt.Errorf("core: object declarations must lower to ports")
	}
	elemA, elemB := unfoldM(uA.Elem()), unfoldM(uB.Elem())

	stub := &ObjectStub{
		calls:    make(map[string]*CallStub),
		messages: make(map[string]*MessageStub),
		pairing:  make(map[string]string),
	}

	// Single-method objects collapse the choice (§3.4): handle both
	// shapes.
	type methodPair struct {
		nameA, nameB string
		invA, invB   *mtype.Type
	}
	var pairs []methodPair
	if elemA.Kind() == mtype.KindChoice && elemB.Kind() == mtype.KindChoice {
		d, err := m.Decision(elemA, elemB)
		if err != nil {
			return nil, err
		}
		if d.Kind != compare.DecChoice {
			return nil, fmt.Errorf("core: unexpected decision kind for method choice")
		}
		altsA, altsB := elemA.Alts(), elemB.Alts()
		for i, j := range d.AltMap {
			pairs = append(pairs, methodPair{
				nameA: altsA[i].Name, nameB: altsB[j].Name,
				invA: altsA[i].Type, invB: altsB[j].Type,
			})
		}
	} else {
		pairs = append(pairs, methodPair{
			nameA: elemA.Tag(), nameB: elemB.Tag(),
			invA: elemA, invB: elemB,
		})
	}

	for _, p := range pairs {
		target, ok := targets[p.nameB]
		if !ok {
			return nil, fmt.Errorf("core: no target for callee method %q (paired with %q)", p.nameB, p.nameA)
		}
		stub.pairing[p.nameA] = p.nameB
		// Oneway invocations are bare records; call invocations carry a
		// reply port as their last field.
		if isOnewayInvocation(p.invA) {
			ms, err := s.messageStubFromMtypes(p.invA, p.invB, engine, target)
			if err != nil {
				return nil, fmt.Errorf("method %s: %w", p.nameA, err)
			}
			stub.messages[p.nameA] = ms
			continue
		}
		cs, err := s.newCallStubFromMtypes(mtype.NewPort(p.invA), mtype.NewPort(p.invB), engine, target)
		if err != nil {
			return nil, fmt.Errorf("method %s: %w", p.nameA, err)
		}
		stub.calls[p.nameA] = cs
	}
	return stub, nil
}

// isOnewayInvocation reports whether the invocation record lacks a reply
// port (a oneway message, §3.3).
func isOnewayInvocation(inv *mtype.Type) bool {
	u := unfoldM(inv)
	if u.Kind() != mtype.KindRecord || len(u.Fields()) == 0 {
		return u.Kind() != mtype.KindRecord
	}
	last := unfoldM(u.Fields()[len(u.Fields())-1].Type)
	return last.Kind() != mtype.KindPort
}

// messageStubFromMtypes builds a message stub for matched bare records.
func (s *Session) messageStubFromMtypes(mtA, mtB *mtype.Type, engine Engine, target Target) (*MessageStub, error) {
	c := s.newComparer()
	m, ok := c.Equivalent(mtA, mtB)
	if !ok {
		return nil, fmt.Errorf("core: message types not equivalent")
	}
	p, err := plan.Build(m)
	if err != nil {
		return nil, err
	}
	conv, err := s.newConverter(engine, p)
	if err != nil {
		return nil, err
	}
	return &MessageStub{conv: conv, target: target}, nil
}

// Invoke calls the caller-side method by name.
func (o *ObjectStub) Invoke(method string, inputs value.Value) (value.Value, error) {
	if cs, ok := o.calls[method]; ok {
		return cs.Invoke(inputs)
	}
	if ms, ok := o.messages[method]; ok {
		return value.Record{}, ms.Send(inputs)
	}
	return nil, fmt.Errorf("core: object stub has no method %q (have %v)", method, o.MethodNames())
}

// MethodNames lists the caller-side method names, sorted.
func (o *ObjectStub) MethodNames() []string {
	out := make([]string, 0, len(o.calls)+len(o.messages))
	for name := range o.calls {
		out = append(out, name)
	}
	for name := range o.messages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Pairing reports the callee method paired with a caller method.
func (o *ObjectStub) Pairing(method string) (string, bool) {
	b, ok := o.pairing[method]
	return b, ok
}
