package jheap

import "testing"

func TestNewObjectAndFields(t *testing.T) {
	h := NewHeap()
	r := h.New("Point", 2)
	if r == NullRef {
		t.Fatal("New returned null")
	}
	if cls, _ := h.Class(r); cls != "Point" {
		t.Errorf("class = %q", cls)
	}
	if err := h.SetField(r, 0, FloatSlot(1.5)); err != nil {
		t.Fatal(err)
	}
	s, err := h.Field(r, 0)
	if err != nil || s.Kind != SlotFloat || s.F != 1.5 {
		t.Errorf("field = %+v, %v", s, err)
	}
	// Fresh fields are zero int slots.
	s, _ = h.Field(r, 1)
	if s.Kind != 0 || s.I != 0 {
		t.Errorf("fresh field = %+v", s)
	}
}

func TestFieldBounds(t *testing.T) {
	h := NewHeap()
	r := h.New("C", 1)
	if err := h.SetField(r, 5, IntSlot(1)); err == nil {
		t.Error("out-of-range field accepted")
	}
	if _, err := h.Field(r, -1); err == nil {
		t.Error("negative field accepted")
	}
}

func TestNullAndDangling(t *testing.T) {
	h := NewHeap()
	if _, err := h.Field(NullRef, 0); err == nil {
		t.Error("null dereference accepted")
	}
	if _, err := h.Field(Ref(99), 0); err == nil {
		t.Error("dangling reference accepted")
	}
}

func TestVector(t *testing.T) {
	h := NewHeap()
	v := h.NewVector("PointVector")
	if !h.IsVector(v) {
		t.Fatal("not a vector")
	}
	p := h.New("Point", 2)
	if err := h.VectorAppend(v, p); err != nil {
		t.Fatal(err)
	}
	if err := h.VectorAppend(v, NullRef); err != nil {
		t.Fatal(err)
	}
	n, err := h.VectorLen(v)
	if err != nil || n != 2 {
		t.Fatalf("len = %d, %v", n, err)
	}
	got, err := h.VectorAt(v, 0)
	if err != nil || got != p {
		t.Errorf("at(0) = %d, %v", got, err)
	}
	if _, err := h.VectorAt(v, 9); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := h.VectorAppend(p, p); err == nil {
		t.Error("append to non-vector accepted")
	}
}

func TestVectorDefaultClass(t *testing.T) {
	h := NewHeap()
	v := h.NewVector("")
	if cls, _ := h.Class(v); cls != "java.util.Vector" {
		t.Errorf("class = %q", cls)
	}
}

func TestRefArray(t *testing.T) {
	h := NewHeap()
	a := h.NewRefArray("Point", 3)
	n, err := h.ArrayLen(a)
	if err != nil || n != 3 {
		t.Fatalf("len = %d, %v", n, err)
	}
	p := h.New("Point", 2)
	if err := h.RefArraySet(a, 1, p); err != nil {
		t.Fatal(err)
	}
	got, err := h.RefArrayAt(a, 1)
	if err != nil || got != p {
		t.Errorf("at(1) = %d, %v", got, err)
	}
	if got, _ := h.RefArrayAt(a, 0); got != NullRef {
		t.Errorf("fresh element = %d, want null", got)
	}
	if err := h.RefArraySet(a, 5, p); err == nil {
		t.Error("out-of-range set accepted")
	}
	if err := h.PrimArraySet(a, 0, IntSlot(1)); err == nil {
		t.Error("prim set on ref array accepted")
	}
}

func TestPrimArray(t *testing.T) {
	h := NewHeap()
	a := h.NewPrimArray("float", 2)
	if err := h.PrimArraySet(a, 0, FloatSlot(2.5)); err != nil {
		t.Fatal(err)
	}
	s, err := h.PrimArrayAt(a, 0)
	if err != nil || s.F != 2.5 {
		t.Errorf("at(0) = %+v, %v", s, err)
	}
	if _, err := h.RefArrayAt(a, 0); err == nil {
		t.Error("ref read on prim array accepted")
	}
}

func TestArrayLenOnNonArray(t *testing.T) {
	h := NewHeap()
	o := h.New("X", 0)
	if _, err := h.ArrayLen(o); err == nil {
		t.Error("ArrayLen on plain object accepted")
	}
}

func TestAliasing(t *testing.T) {
	// Two fields referring to the same object observe each other's writes
	// — the aliasing the noalias annotation promises away.
	h := NewHeap()
	shared := h.New("Point", 2)
	line := h.New("Line", 2)
	_ = h.SetField(line, 0, RefSlot(shared))
	_ = h.SetField(line, 1, RefSlot(shared))
	_ = h.SetField(shared, 0, FloatSlot(9))
	s0, _ := h.Field(line, 0)
	s1, _ := h.Field(line, 1)
	if s0.R != s1.R {
		t.Fatal("aliases differ")
	}
	v, _ := h.Field(s1.R, 0)
	if v.F != 9 {
		t.Errorf("alias write not visible: %v", v.F)
	}
}

func TestLive(t *testing.T) {
	h := NewHeap()
	if h.Live() != 0 {
		t.Errorf("fresh heap live = %d", h.Live())
	}
	h.New("A", 0)
	h.NewVector("")
	if h.Live() != 2 {
		t.Errorf("live = %d, want 2", h.Live())
	}
}

func TestSlotConstructors(t *testing.T) {
	if s := IntSlot(7); s.Kind != SlotInt || s.I != 7 {
		t.Errorf("IntSlot = %+v", s)
	}
	if s := FloatSlot(1.5); s.Kind != SlotFloat || s.F != 1.5 {
		t.Errorf("FloatSlot = %+v", s)
	}
	if s := CharSlot('x'); s.Kind != SlotChar || s.C != 'x' {
		t.Errorf("CharSlot = %+v", s)
	}
	if s := RefSlot(3); s.Kind != SlotRef || s.R != 3 {
		t.Errorf("RefSlot = %+v", s)
	}
}
