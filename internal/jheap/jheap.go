// Package jheap simulates a Java object heap: objects with typed fields
// addressed by reference, null references, reference aliasing, primitive
// and reference arrays, and a built-in java.util.Vector. The paper's local
// stubs traverse real JVM objects through JNI; the binding layer traverses
// a Heap instead, exercising identical structure: nullable references,
// object graphs with sharing, and collections of indefinite size.
package jheap

import (
	"fmt"
)

// Ref is an object reference. 0 is null.
type Ref int32

// NullRef is the null reference.
const NullRef Ref = 0

// SlotKind tags the content of a field slot.
type SlotKind uint8

// Slot kinds.
const (
	SlotInt SlotKind = iota + 1 // boolean, byte, short, int, long
	SlotFloat
	SlotChar
	SlotRef
)

// Slot is one field value.
type Slot struct {
	Kind SlotKind
	I    int64
	F    float64
	C    rune
	R    Ref
}

// IntSlot returns an integral slot (covers boolean/byte/short/int/long).
func IntSlot(v int64) Slot { return Slot{Kind: SlotInt, I: v} }

// FloatSlot returns a floating slot.
func FloatSlot(v float64) Slot { return Slot{Kind: SlotFloat, F: v} }

// CharSlot returns a char slot.
func CharSlot(r rune) Slot { return Slot{Kind: SlotChar, C: r} }

// RefSlot returns a reference slot.
func RefSlot(r Ref) Slot { return Slot{Kind: SlotRef, R: r} }

type object struct {
	class  string
	fields []Slot
	// elems is the backing store of Vectors and reference arrays.
	elems []Ref
	// prims is the backing store of primitive arrays.
	prims []Slot
	// isVector / isArray discriminate the built-in container kinds.
	isVector  bool
	isRefArr  bool
	isPrimArr bool
}

// Heap is a simulated Java heap. The zero value is not usable; call
// NewHeap.
type Heap struct {
	objects []*object // index 0 unused (null)
}

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{objects: make([]*object, 1)}
}

// Live returns the number of live objects.
func (h *Heap) Live() int { return len(h.objects) - 1 }

func (h *Heap) add(o *object) Ref {
	h.objects = append(h.objects, o)
	return Ref(len(h.objects) - 1)
}

func (h *Heap) get(r Ref) (*object, error) {
	if r == NullRef {
		return nil, fmt.Errorf("jheap: null reference")
	}
	if int(r) >= len(h.objects) || r < 0 {
		return nil, fmt.Errorf("jheap: dangling reference %d", r)
	}
	return h.objects[r], nil
}

// New allocates an object of the class with the given field count; fields
// start zeroed (int 0 / null).
func (h *Heap) New(class string, numFields int) Ref {
	return h.add(&object{class: class, fields: make([]Slot, numFields)})
}

// Class returns the class name of the object.
func (h *Heap) Class(r Ref) (string, error) {
	o, err := h.get(r)
	if err != nil {
		return "", err
	}
	return o.class, nil
}

// SetField stores a field slot.
func (h *Heap) SetField(r Ref, idx int, s Slot) error {
	o, err := h.get(r)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(o.fields) {
		return fmt.Errorf("jheap: field %d out of range (class %s has %d)", idx, o.class, len(o.fields))
	}
	o.fields[idx] = s
	return nil
}

// Field loads a field slot.
func (h *Heap) Field(r Ref, idx int) (Slot, error) {
	o, err := h.get(r)
	if err != nil {
		return Slot{}, err
	}
	if idx < 0 || idx >= len(o.fields) {
		return Slot{}, fmt.Errorf("jheap: field %d out of range (class %s has %d)", idx, o.class, len(o.fields))
	}
	return o.fields[idx], nil
}

// NewVector allocates an empty java.util.Vector (or subclass).
func (h *Heap) NewVector(class string) Ref {
	if class == "" {
		class = "java.util.Vector"
	}
	return h.add(&object{class: class, isVector: true})
}

// VectorAppend appends an element reference.
func (h *Heap) VectorAppend(r Ref, elem Ref) error {
	o, err := h.get(r)
	if err != nil {
		return err
	}
	if !o.isVector {
		return fmt.Errorf("jheap: %s is not a Vector", o.class)
	}
	o.elems = append(o.elems, elem)
	return nil
}

// VectorLen returns the element count.
func (h *Heap) VectorLen(r Ref) (int, error) {
	o, err := h.get(r)
	if err != nil {
		return 0, err
	}
	if !o.isVector {
		return 0, fmt.Errorf("jheap: %s is not a Vector", o.class)
	}
	return len(o.elems), nil
}

// VectorAt returns the element at index i.
func (h *Heap) VectorAt(r Ref, i int) (Ref, error) {
	o, err := h.get(r)
	if err != nil {
		return NullRef, err
	}
	if !o.isVector {
		return NullRef, fmt.Errorf("jheap: %s is not a Vector", o.class)
	}
	if i < 0 || i >= len(o.elems) {
		return NullRef, fmt.Errorf("jheap: vector index %d out of range %d", i, len(o.elems))
	}
	return o.elems[i], nil
}

// NewRefArray allocates a reference array (elements start null).
func (h *Heap) NewRefArray(class string, length int) Ref {
	return h.add(&object{class: class + "[]", isRefArr: true, elems: make([]Ref, length)})
}

// NewPrimArray allocates a primitive array of the given slot kind.
func (h *Heap) NewPrimArray(class string, length int) Ref {
	return h.add(&object{class: class + "[]", isPrimArr: true, prims: make([]Slot, length)})
}

// ArrayLen returns the length of a reference or primitive array, or of a
// Vector.
func (h *Heap) ArrayLen(r Ref) (int, error) {
	o, err := h.get(r)
	if err != nil {
		return 0, err
	}
	switch {
	case o.isRefArr, o.isVector:
		return len(o.elems), nil
	case o.isPrimArr:
		return len(o.prims), nil
	default:
		return 0, fmt.Errorf("jheap: %s is not an array", o.class)
	}
}

// RefArraySet stores into a reference array.
func (h *Heap) RefArraySet(r Ref, i int, elem Ref) error {
	o, err := h.get(r)
	if err != nil {
		return err
	}
	if !o.isRefArr {
		return fmt.Errorf("jheap: %s is not a reference array", o.class)
	}
	if i < 0 || i >= len(o.elems) {
		return fmt.Errorf("jheap: index %d out of range %d", i, len(o.elems))
	}
	o.elems[i] = elem
	return nil
}

// RefArrayAt loads from a reference array.
func (h *Heap) RefArrayAt(r Ref, i int) (Ref, error) {
	o, err := h.get(r)
	if err != nil {
		return NullRef, err
	}
	if !o.isRefArr {
		return NullRef, fmt.Errorf("jheap: %s is not a reference array", o.class)
	}
	if i < 0 || i >= len(o.elems) {
		return NullRef, fmt.Errorf("jheap: index %d out of range %d", i, len(o.elems))
	}
	return o.elems[i], nil
}

// PrimArraySet stores into a primitive array.
func (h *Heap) PrimArraySet(r Ref, i int, s Slot) error {
	o, err := h.get(r)
	if err != nil {
		return err
	}
	if !o.isPrimArr {
		return fmt.Errorf("jheap: %s is not a primitive array", o.class)
	}
	if i < 0 || i >= len(o.prims) {
		return fmt.Errorf("jheap: index %d out of range %d", i, len(o.prims))
	}
	o.prims[i] = s
	return nil
}

// PrimArrayAt loads from a primitive array.
func (h *Heap) PrimArrayAt(r Ref, i int) (Slot, error) {
	o, err := h.get(r)
	if err != nil {
		return Slot{}, err
	}
	if !o.isPrimArr {
		return Slot{}, fmt.Errorf("jheap: %s is not a primitive array", o.class)
	}
	if i < 0 || i >= len(o.prims) {
		return Slot{}, fmt.Errorf("jheap: index %d out of range %d", i, len(o.prims))
	}
	return o.prims[i], nil
}

// IsVector reports whether the reference is a Vector.
func (h *Heap) IsVector(r Ref) bool {
	o, err := h.get(r)
	return err == nil && o.isVector
}
