package gen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/plan"
)

func mustPlan(t *testing.T, a, b *mtype.Type) *plan.Plan {
	t.Helper()
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(a, b)
	if !ok {
		t.Fatalf("types do not match:\n%s", c.Explain(a, b, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func f32() *mtype.Type { return mtype.NewFloat32() }

func fitterishPlan(t *testing.T) *plan.Plan {
	point := mtype.RecordOf(f32(), f32())
	line := mtype.RecordOf(point, point)
	four := mtype.RecordOf(f32(), f32(), f32(), f32())
	return mustPlan(t, line, four)
}

func TestConverterParses(t *testing.T) {
	src, err := Converter(fitterishPlan(t), "stubs", "LineToFloats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package stubs",
		"func LineToFloats(v value.Value) (value.Value, error)",
		"DO NOT EDIT",
		"lineToFloatsAt(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestConverterCoversAllNodeKinds(t *testing.T) {
	i8 := mtype.NewIntegerBits(8, true)
	a := mtype.NewRecord(
		mtype.Field{Name: "opt", Type: mtype.NewOptional(i8)},
		mtype.Field{Name: "lst", Type: mtype.NewList(f32())},
		mtype.Field{Name: "p", Type: mtype.NewPort(f32())},
		mtype.Field{Name: "u", Type: mtype.Unit()},
	)
	b := mtype.NewRecord(
		mtype.Field{Name: "u", Type: mtype.Unit()},
		mtype.Field{Name: "p", Type: mtype.NewPort(f32())},
		mtype.Field{Name: "lst", Type: mtype.NewList(f32())},
		mtype.Field{Name: "opt", Type: mtype.NewOptional(i8)},
	)
	p := mustPlan(t, a, b)
	src, err := Converter(p, "stubs", "Shuffle")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "value.Choice{") {
		t.Error("choice handling missing")
	}
	if !strings.Contains(src, "value.Port") {
		t.Error("port handling missing")
	}
	if !strings.Contains(src, "value.Unit{}") {
		t.Error("unit synthesis missing")
	}
}

func TestConverterRecursivePlan(t *testing.T) {
	p := mustPlan(t, mtype.NewList(f32()), mtype.NewList(f32()))
	src, err := Converter(p, "stubs", "CopyList")
	if err != nil {
		t.Fatal(err)
	}
	// The recursive plan must reference its own node functions.
	if !strings.Contains(src, "copyListNode0") {
		t.Errorf("missing node functions:\n%s", src)
	}
}

func TestConverterNilPlan(t *testing.T) {
	if _, err := Converter(nil, "p", "F"); err == nil {
		t.Error("nil plan accepted")
	}
}

// TestGeneratedStubCompilesAndRuns writes a generated stub into a scratch
// module and executes it with the go tool: the stub must compile and
// produce the same conversion the engines produce.
func TestGeneratedStubCompilesAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go-tool integration")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	src, err := Converter(fitterishPlan(t), "main", "LineToFloats")
	if err != nil {
		t.Fatal(err)
	}
	mainSrc := `package main

import (
	"fmt"
	"os"

	"repro/internal/value"
)

func main() {
	line := value.NewRecord(
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	)
	out, err := LineToFloats(line)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
`
	// The stub imports repro/internal/value, so it must live inside this
	// module; a directory starting with "_" is invisible to ./...
	// patterns but buildable when named explicitly.
	dir, err := os.MkdirTemp(repoRoot, "_gentest")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for name, content := range map[string]string{
		"stub.go": src,
		"main.go": mainSrc,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command(goBin, "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "{1, 2, 3, 4}" {
		t.Errorf("generated stub output = %q, want {1, 2, 3, 4}", got)
	}
}

// TestConverterSemanticHook emits a plan containing a programmer hook:
// the generated file must expose a hook table and parse.
func TestConverterSemanticHook(t *testing.T) {
	c := compare.NewComparer(compare.DefaultRules())
	c.RegisterSemantic("SlopeLine", "SegLine", "slope→seg")
	slope := mtype.RecordOf(mtype.NewFloat64(), mtype.NewFloat64()).SetTag("SlopeLine")
	seg := mtype.RecordOf(
		mtype.RecordOf(mtype.NewFloat64(), mtype.NewFloat64()),
		mtype.RecordOf(mtype.NewFloat64(), mtype.NewFloat64()),
	).SetTag("SegLine")
	m, ok := c.Equivalent(slope, seg)
	if !ok {
		t.Fatal("semantic pair did not match")
	}
	p, err := plan.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Converter(p, "stubs", "LineBridge")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lineBridgeHooks", `"slope→seg"`, "not registered"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}
