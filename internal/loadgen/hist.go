// Package loadgen is the saturation harness under cmd/mbirdload: a
// load generator that drives the mbird daemons in either a closed loop
// (a fixed worker count issuing back-to-back calls — the shape that
// finds a throughput ceiling) or an open loop (a fixed arrival schedule
// independent of response times — the shape that measures latency at an
// offered rate without coordinated omission), recording latencies in an
// HDR-style log-bucketed histogram.
//
// The coordinated-omission point matters enough to restate: a closed
// loop stops *offering* load while the server stalls, so a 1-second
// server pause costs one slow sample instead of a thousand — the
// histogram silently forgives exactly the behavior a latency SLO exists
// to catch. The open loop therefore timestamps every operation from its
// *scheduled* start (when the arrival process wanted it sent), not from
// when a worker got around to sending it; queueing delay behind a stall
// lands in the recorded latency, where it belongs.
package loadgen

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram bucket geometry: values (nanoseconds) are bucketed with
// subBits bits of mantissa per power-of-two scale, giving a constant
// ~1/2^subBits relative resolution (subBits=6 → ~1.6% error), like an
// HDR histogram with 2 significant digits. A 64-entry sub-bucket row
// per scale over 38 scales covers 1ns..~4.5min in ~19KiB of counters.
const (
	subBits    = 6
	subCount   = 1 << subBits
	scaleCount = 38
)

// Hist is a log-bucketed latency histogram. It is NOT safe for
// concurrent use; workers record into private instances and Merge them.
type Hist struct {
	counts [scaleCount * subCount]uint64
	total  uint64
	max    int64
	min    int64
}

// bucket maps a nanosecond value to its bucket index: an exact bucket
// below subCount, then subCount sub-buckets per power-of-two scale.
func bucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < subCount {
		return int(v)
	}
	scale := bits.Len64(v) - 1 - subBits
	idx := (scale+1)*subCount + int((v>>uint(scale))&(subCount-1))
	if idx >= scaleCount*subCount {
		idx = scaleCount*subCount - 1
	}
	return idx
}

// bucketLow returns the lowest nanosecond value mapped to bucket i (the
// value reported for percentiles that land in it).
func bucketLow(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	scale := i/subCount - 1
	sub := int64(i % subCount)
	return (int64(subCount) + sub) << uint(scale)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	h.counts[bucket(ns)]++
	h.total++
	if ns > h.max {
		h.max = ns
	}
	if h.total == 1 || ns < h.min {
		h.min = ns
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Min returns the smallest recorded value (exact, not bucketed).
func (h *Hist) Min() time.Duration { return time.Duration(h.min) }

// Percentile returns the p-quantile (0 < p ≤ 1) at bucket resolution,
// or 0 with no observations. Percentile(1) returns the exact max.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if p >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(p * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max)
}

// String renders the standard percentile line.
func (h *Hist) String() string {
	return fmt.Sprintf("p50=%v p90=%v p99=%v p999=%v max=%v (n=%d)",
		h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99),
		h.Percentile(0.999), h.Max(), h.Count())
}
