package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the load-generation loop shape.
type Mode string

const (
	// Closed runs Concurrency workers back-to-back: each worker issues
	// its next call the moment the previous one returns. Throughput
	// floats to the system's ceiling; latency under a stall is
	// under-reported (coordinated omission), so closed-loop results
	// answer "how fast can it go", not "how does it behave at rate R".
	Closed Mode = "closed"
	// Open issues calls on a fixed arrival schedule at Rate per second,
	// regardless of how long responses take. Latency for each call is
	// measured from its scheduled start, so time spent queueing behind a
	// slow server is charged to the result instead of silently deferring
	// the offered load.
	Open Mode = "open"
)

// Options configures one load run.
type Options struct {
	// Mode is Closed or Open (default Closed).
	Mode Mode
	// Concurrency is the worker count: the fixed multiprogramming level
	// in closed mode, the maximum outstanding calls in open mode
	// (default 8). Open-loop runs that exhaust all workers accumulate
	// schedule lag, which the latency accounting then surfaces.
	Concurrency int
	// Rate is the open-loop arrival rate in calls per second (required
	// for Open mode).
	Rate float64
	// Duration bounds the measured run (default 5s).
	Duration time.Duration
	// Warmup runs the same loop shape, unrecorded, before measurement
	// (default 0; useful to populate server caches and connection
	// pools).
	Warmup time.Duration
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = Closed
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	return o
}

// Result is one run's measurements.
type Result struct {
	// Mode, Concurrency, and TargetRate echo the run configuration.
	Mode        Mode
	Concurrency int
	TargetRate  float64
	// Elapsed is the measured wall time; Ops and Errors count completed
	// calls (Errors is the failed subset; failed calls still record
	// latency).
	Elapsed time.Duration
	Ops     int64
	Errors  int64
	// Throughput is achieved calls per second.
	Throughput float64
	// Hist holds every recorded latency; open-loop latencies are
	// schedule-anchored.
	Hist Hist
	// LastErr samples one error for diagnostics.
	LastErr error
}

// Op is one load operation. It must be safe for concurrent use across
// the run's workers (give each worker its own connection inside the
// closure if the client is not).
type Op func(ctx context.Context, worker int) error

// Run drives op under o until o.Duration elapses or ctx is canceled,
// and returns the merged measurements.
func Run(ctx context.Context, o Options, op Op) (Result, error) {
	o = o.withDefaults()
	if o.Mode != Closed && o.Mode != Open {
		return Result{}, fmt.Errorf("loadgen: unknown mode %q", o.Mode)
	}
	if o.Mode == Open && o.Rate <= 0 {
		return Result{}, errors.New("loadgen: open mode requires a positive rate")
	}
	if o.Warmup > 0 {
		w := o
		w.Warmup = 0
		w.Duration = o.Warmup
		wctx, cancel := context.WithTimeout(ctx, o.Warmup+30*time.Second)
		run(wctx, w, op)
		cancel()
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	res := run(ctx, o, op)
	return res, ctx.Err()
}

// worker-local accumulation, merged once at the end so the hot loop
// shares nothing.
type workerState struct {
	hist    Hist
	ops     int64
	errs    int64
	lastErr error
}

func run(ctx context.Context, o Options, op Op) Result {
	res := Result{Mode: o.Mode, Concurrency: o.Concurrency, TargetRate: o.Rate}
	states := make([]workerState, o.Concurrency)
	deadline := time.Now().Add(o.Duration)
	rctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	if o.Mode == Closed {
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := &states[w]
				for time.Now().Before(deadline) && rctx.Err() == nil {
					t0 := time.Now()
					err := op(rctx, w)
					st.record(time.Since(t0), err, rctx, deadline)
				}
			}(w)
		}
	} else {
		// Open loop: call i is due at start + i*interval. Workers claim
		// arrival slots from a shared counter, sleep until the slot's
		// scheduled time, and measure from that scheduled time — a call
		// that could not be sent on schedule (all workers busy) still
		// pays its queueing delay in the histogram.
		interval := time.Duration(float64(time.Second) / o.Rate)
		var next atomic.Int64
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := &states[w]
				for rctx.Err() == nil {
					slot := next.Add(1) - 1
					sched := start.Add(time.Duration(slot) * interval)
					if sched.After(deadline) {
						return
					}
					if d := time.Until(sched); d > 0 {
						select {
						case <-rctx.Done():
							return
						case <-time.After(d):
						}
					}
					err := op(rctx, w)
					st.record(time.Since(sched), err, rctx, deadline)
				}
			}(w)
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	for i := range states {
		st := &states[i]
		res.Ops += st.ops
		res.Errors += st.errs
		res.Hist.Merge(&st.hist)
		if st.lastErr != nil {
			res.LastErr = st.lastErr
		}
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Ops) / s
	}
	return res
}

// record accounts one completed call. Calls that failed only because
// the run's own clock ran out (context deadline at shutdown) are
// discarded rather than counted as errors. The wall-clock check matters:
// at the window boundary a call can fail on the run deadline (a write
// deadline or the client's backstop timer) a moment before the context's
// own expiry callback has run, so rctx.Err() alone would still be nil
// and a shutdown artifact would count as a failure.
func (st *workerState) record(d time.Duration, err error, rctx context.Context, deadline time.Time) {
	if err != nil && (rctx.Err() != nil || !time.Now().Before(deadline)) {
		return
	}
	st.ops++
	st.hist.Record(d)
	if err != nil {
		st.errs++
		st.lastErr = err
	}
}
