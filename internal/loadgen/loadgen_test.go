package loadgen

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	// Every bucket's low bound must map back to its own index, and
	// bounds must be monotone.
	prev := int64(-1)
	for i := 0; i < scaleCount*subCount; i++ {
		low := bucketLow(i)
		if low <= prev {
			t.Fatalf("bucketLow(%d)=%d not monotone after %d", i, low, prev)
		}
		prev = low
		if got := bucket(low); got != i && i < scaleCount*subCount-1 {
			t.Fatalf("bucket(bucketLow(%d)=%d) = %d", i, low, got)
		}
	}
}

func TestHistPercentileResolution(t *testing.T) {
	var h Hist
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.90, 9000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{0.999, 9990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Percentile(c.p)
		relErr := math.Abs(float64(got-c.want)) / float64(c.want)
		if relErr > 2.0/subCount {
			t.Errorf("p%g = %v, want ≈%v (rel err %.3f)", c.p*100, got, c.want, relErr)
		}
	}
	if h.Percentile(1) != 10000*time.Microsecond {
		t.Errorf("p100 = %v", h.Percentile(1))
	}
	if h.Min() != time.Microsecond {
		t.Errorf("min = %v", h.Min())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(500 * time.Microsecond)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 2*time.Millisecond || a.Min() != 500*time.Microsecond {
		t.Fatalf("merged: n=%d max=%v min=%v", a.Count(), a.Max(), a.Min())
	}
}

func TestClosedLoop(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), Options{
		Mode: Closed, Concurrency: 4, Duration: 200 * time.Millisecond,
	}, func(ctx context.Context, w int) error {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Ops != calls.Load() {
		t.Fatalf("ops = %d, calls = %d", res.Ops, calls.Load())
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d (%v)", res.Errors, res.LastErr)
	}
	if int64(res.Hist.Count()) != res.Ops {
		t.Fatalf("hist count %d != ops %d", res.Hist.Count(), res.Ops)
	}
	if res.Throughput < 100 {
		t.Fatalf("throughput = %.0f, want hundreds with 4 workers at ~1ms", res.Throughput)
	}
}

func TestOpenLoopRate(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Mode: Open, Rate: 500, Concurrency: 16, Duration: 400 * time.Millisecond,
	}, func(ctx context.Context, w int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// ~200 arrivals scheduled; allow wide slop for CI noise.
	if res.Ops < 100 || res.Ops > 260 {
		t.Fatalf("ops = %d, want ≈200 at 500/s over 400ms", res.Ops)
	}
}

// TestOpenLoopChargesQueueing is the coordinated-omission check: a
// server that stalls must show the stall in open-loop percentiles even
// though only a few calls physically overlapped it.
func TestOpenLoopChargesQueueing(t *testing.T) {
	var n atomic.Int64
	res, err := Run(context.Background(), Options{
		Mode: Open, Rate: 1000, Concurrency: 1, Duration: 300 * time.Millisecond,
	}, func(ctx context.Context, w int) error {
		if n.Add(1) == 10 {
			time.Sleep(100 * time.Millisecond) // one stall, 1/3 of the run
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// With a single worker the stall blocks ~100 scheduled arrivals;
	// schedule-anchored latency must push p90 to tens of milliseconds.
	if p90 := res.Hist.Percentile(0.90); p90 < 5*time.Millisecond {
		t.Fatalf("p90 = %v; the stall was coordinated-omitted", p90)
	}
}

func TestOpenLoopRequiresRate(t *testing.T) {
	_, err := Run(context.Background(), Options{Mode: Open}, func(ctx context.Context, w int) error { return nil })
	if err == nil {
		t.Fatal("open mode without rate succeeded")
	}
}

func TestErrorsCounted(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(context.Background(), Options{
		Mode: Closed, Concurrency: 2, Duration: 50 * time.Millisecond,
	}, func(ctx context.Context, w int) error {
		time.Sleep(100 * time.Microsecond)
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Errors != res.Ops {
		t.Fatalf("errors = %d of %d ops", res.Errors, res.Ops)
	}
	if !errors.Is(res.LastErr, boom) {
		t.Fatalf("lastErr = %v", res.LastErr)
	}
}
