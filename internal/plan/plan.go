// Package plan builds coercion plans: the internal data structure that
// "incorporates discovered structural correspondences between the two
// Mtypes" (§4). A Plan is a graph of conversion nodes, one per matched
// Mtype pair, possibly cyclic for recursive types. The converter executes
// plans (interpretively or compiled to closures) and the stub generator
// prints them as Go source — the plan is the intermediate representation
// the paper's §6 set out as future work.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/compare"
	"repro/internal/mtype"
)

// Plan is a complete coercion plan from values of Mtype A to values of
// Mtype B.
type Plan struct {
	Root *Node
	// Nodes lists every plan node in creation order; Root is Nodes[0].
	Nodes []*Node
	// Mode records whether the plan witnesses equivalence or subtyping.
	Mode compare.Mode
}

// Node is one conversion step, keyed to a matched pair of Mtype nodes.
// The fields used depend on Kind (mirroring compare.Decision).
type Node struct {
	ID   int
	Kind compare.DecisionKind
	A, B *mtype.Type

	// DecRecord.
	FlatA, FlatB []compare.FlatLeaf
	Perm         []int
	// LeafPlans[i] converts non-unit A leaf i; nil for unit leaves.
	LeafPlans []*Node

	// DecChoice: AltPlans[i] converts A alternative i into B alternative
	// AltMap[i].
	AltMap   []int
	AltPlans []*Node

	// DecInject: InjectPlan converts A into B alternative AltMap[0].
	InjectPlan *Node

	// DecSemantic: the programmer-supplied hook name (§6).
	Hook string
}

type pairKey struct {
	a, b *mtype.Type
}

// Build constructs the plan for a successful match, rooted at the matched
// pair.
func Build(m *compare.Match) (*Plan, error) {
	return BuildFor(m, m.A, m.B)
}

// BuildFor constructs a plan rooted at any pair matched during the
// comparison (e.g. the request records inside two matched function
// ports).
func BuildFor(m *compare.Match, a, b *mtype.Type) (*Plan, error) {
	bld := &builder{m: m, memo: make(map[pairKey]*Node)}
	root, err := bld.node(a, b)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Nodes: bld.nodes, Mode: m.Mode}, nil
}

type builder struct {
	m     *compare.Match
	memo  map[pairKey]*Node
	nodes []*Node
}

func (b *builder) node(a, t *mtype.Type) (*Node, error) {
	key := pairKey{unfoldT(a), unfoldT(t)}
	if n, ok := b.memo[key]; ok {
		return n, nil
	}
	d, err := b.m.Decision(a, t)
	if err != nil {
		return nil, err
	}
	n := &Node{ID: len(b.nodes), Kind: d.Kind, A: key.a, B: key.b}
	b.memo[key] = n
	b.nodes = append(b.nodes, n)

	switch d.Kind {
	case compare.DecSame, compare.DecPrim, compare.DecPort:
		// Leaf conversions; nothing further to build.
	case compare.DecSemantic:
		n.Hook = d.Hook
	case compare.DecRecord:
		n.FlatA, n.FlatB, n.Perm = d.FlatA, d.FlatB, d.Perm
		n.LeafPlans = make([]*Node, len(d.FlatA))
		for i, leaf := range d.FlatA {
			if leaf.Unit || d.Perm[i] < 0 {
				continue
			}
			target := d.FlatB[d.Perm[i]]
			child, err := b.node(leaf.Node, target.Node)
			if err != nil {
				return nil, fmt.Errorf("record leaf %d: %w", i, err)
			}
			n.LeafPlans[i] = child
		}
	case compare.DecChoice:
		n.AltMap = d.AltMap
		altsA := key.a.Alts()
		altsB := key.b.Alts()
		n.AltPlans = make([]*Node, len(altsA))
		for i, j := range d.AltMap {
			if j < 0 {
				return nil, fmt.Errorf("plan: unmatched choice alternative %d", i)
			}
			child, err := b.node(altsA[i].Type, altsB[j].Type)
			if err != nil {
				return nil, fmt.Errorf("choice alternative %d: %w", i, err)
			}
			n.AltPlans[i] = child
		}
	case compare.DecInject:
		n.AltMap = d.AltMap
		alt := key.b.Alts()[d.AltMap[0]]
		child, err := b.node(key.a, alt.Type)
		if err != nil {
			return nil, fmt.Errorf("injection: %w", err)
		}
		n.InjectPlan = child
	default:
		return nil, fmt.Errorf("plan: unknown decision kind %d", d.Kind)
	}
	return n, nil
}

func unfoldT(t *mtype.Type) *mtype.Type {
	for t != nil && t.Kind() == mtype.KindRecursive {
		t = t.Body()
	}
	return t
}

// String renders the plan for diagnostics and golden tests.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan(%s, %d nodes)\n", p.Mode, len(p.Nodes))
	for _, n := range p.Nodes {
		fmt.Fprintf(&sb, "  n%d: %s", n.ID, kindName(n.Kind))
		switch n.Kind {
		case compare.DecRecord:
			fmt.Fprintf(&sb, " perm=%v leaves=[", n.Perm)
			for i, lp := range n.LeafPlans {
				if i > 0 {
					sb.WriteString(" ")
				}
				if lp == nil {
					sb.WriteString("unit")
				} else {
					fmt.Fprintf(&sb, "n%d", lp.ID)
				}
			}
			sb.WriteString("]")
		case compare.DecChoice:
			fmt.Fprintf(&sb, " altMap=%v alts=[", n.AltMap)
			for i, ap := range n.AltPlans {
				if i > 0 {
					sb.WriteString(" ")
				}
				fmt.Fprintf(&sb, "n%d", ap.ID)
			}
			sb.WriteString("]")
		case compare.DecInject:
			fmt.Fprintf(&sb, " into alt %d via n%d", n.AltMap[0], n.InjectPlan.ID)
		case compare.DecSemantic:
			fmt.Fprintf(&sb, " hook=%q", n.Hook)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func kindName(k compare.DecisionKind) string {
	switch k {
	case compare.DecSame:
		return "same"
	case compare.DecPrim:
		return "prim"
	case compare.DecRecord:
		return "record"
	case compare.DecChoice:
		return "choice"
	case compare.DecPort:
		return "port"
	case compare.DecInject:
		return "inject"
	case compare.DecSemantic:
		return "semantic"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}
