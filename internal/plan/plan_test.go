package plan

import (
	"strings"
	"testing"

	"repro/internal/compare"
	"repro/internal/mtype"
)

func f32() *mtype.Type { return mtype.NewFloat32() }

func match(t *testing.T, a, b *mtype.Type) *compare.Match {
	t.Helper()
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(a, b)
	if !ok {
		t.Fatalf("no match:\n%s", c.Explain(a, b, compare.ModeEqual))
	}
	return m
}

func TestBuildRecordPlan(t *testing.T) {
	a := mtype.RecordOf(f32(), mtype.NewIntegerBits(8, true))
	b := mtype.RecordOf(mtype.NewIntegerBits(8, true), f32())
	p, err := Build(match(t, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != compare.DecRecord {
		t.Fatalf("root kind = %d", p.Root.Kind)
	}
	if len(p.Root.Perm) != 2 || p.Root.Perm[0] != 1 || p.Root.Perm[1] != 0 {
		t.Errorf("perm = %v", p.Root.Perm)
	}
	if len(p.Nodes) < 2 {
		t.Errorf("plan has %d nodes", len(p.Nodes))
	}
}

func TestBuildRecursivePlanIsCyclic(t *testing.T) {
	a := mtype.NewList(f32())
	b := mtype.NewList(f32())
	p, err := Build(match(t, a, b))
	if err != nil {
		t.Fatal(err)
	}
	// The cons-cell record node must point back at the list choice node.
	var consNode *Node
	for _, n := range p.Nodes {
		if n.Kind == compare.DecRecord && len(n.LeafPlans) == 2 {
			consNode = n
		}
	}
	if consNode == nil {
		t.Fatal("no cons node found")
	}
	if consNode.LeafPlans[1] != p.Root {
		t.Error("cons tail plan does not close the cycle")
	}
}

func TestBuildForSubPair(t *testing.T) {
	point := mtype.RecordOf(f32(), f32())
	a := mtype.NewPort(point)
	bPoint := mtype.RecordOf(f32(), f32())
	b := mtype.NewPort(bPoint)
	m := match(t, a, b)
	p, err := BuildFor(m, point, bPoint)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != compare.DecRecord {
		t.Errorf("sub-pair root = %d", p.Root.Kind)
	}
}

func TestPlanString(t *testing.T) {
	a := mtype.NewOptional(f32())
	b := mtype.NewOptional(f32())
	p, err := Build(match(t, a, b))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"plan(equal", "choice", "altMap"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestBuildUnmatchedPairFails(t *testing.T) {
	a := mtype.RecordOf(f32())
	b := mtype.RecordOf(f32())
	m := match(t, a, b)
	if _, err := BuildFor(m, a, mtype.NewIntegerBits(8, true)); err == nil {
		t.Error("plan built for a pair that was never matched")
	}
}

func TestSubtypePlanInjection(t *testing.T) {
	c := compare.NewComparer(compare.DefaultRules())
	a := mtype.RecordOf(f32())
	b := mtype.NewOptional(mtype.RecordOf(f32()))
	m, ok := c.Subtype(a, b)
	if !ok {
		t.Fatal("subtype expected")
	}
	p, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	// The injection may surface at the root or at a flattened leaf,
	// depending on which rule fires first; either way the plan must
	// contain an injection step.
	found := false
	for _, n := range p.Nodes {
		if n.Kind == compare.DecInject {
			if n.InjectPlan == nil {
				t.Error("inject node without inner plan")
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no injection node in plan:\n%s", p)
	}
	if !strings.Contains(p.String(), "inject") {
		t.Error("String missing inject")
	}
}
