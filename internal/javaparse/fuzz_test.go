package javaparse

import (
	"strings"
	"testing"

	"repro/internal/limits"
)

// FuzzJavaParse feeds arbitrary bytes to the Java parser under a small
// budget: it must terminate without panicking.
func FuzzJavaParse(f *testing.F) {
	f.Add(`public class Point { private float x; private float y; }`)
	f.Add(`public interface I { Line fitter(PointVector pts); }`)
	f.Add(`class A extends B implements C, D { int x = f(1, g(2)); }`)
	f.Add(`class C { static { init(); } C() {} void m() throws E { } }`)
	f.Add(`package a.b.c; import java.util.*; class X {}`)
	f.Add("class C { int" + strings.Repeat("[]", 40) + " x; }")
	f.Fuzz(func(t *testing.T, src string) {
		b := limits.Budget{MaxBytes: 1 << 16, MaxTokens: 1 << 12, MaxDepth: 64}
		_, _ = ParseBudget("Fuzz.java", src, b)
	})
}
