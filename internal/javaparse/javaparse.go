// Package javaparse parses Java class and interface declarations into
// Stypes. The paper's prototype extracted declarations from compiled
// .class files; this parser reads the same information (fields, method
// signatures, inheritance) from Java source, covering the pre-generics
// language of the paper's era.
//
// Method bodies and field initializers are skipped with brace/semicolon
// matching: only declarations matter to stub compilation. Static members
// are ignored (they are not part of instance state or the remote
// interface); constructors are ignored likewise.
//
// The parser pre-registers the standard classes the paper relies on:
// java.lang.Object, java.lang.String, and java.util.Vector, the last with
// its default "ordered collection of indefinite size" annotation (§3.4).
package javaparse

import (
	"fmt"
	"strings"

	"repro/internal/limits"
	"repro/internal/scan"
	"repro/internal/stype"
)

// Parse parses Java source into a universe with the default input budget.
// file is used in error messages.
func Parse(file, src string) (*stype.Universe, error) {
	return ParseBudget(file, src, limits.Budget{})
}

// ParseBudget is Parse with an explicit input budget (zero fields take
// limits defaults). Violations return an error wrapping limits.ErrBudget.
func ParseBudget(file, src string, b limits.Budget) (*stype.Universe, error) {
	p := &parser{s: scan.NewBudget(file, src, b), u: stype.NewUniverse(stype.LangJava)}
	p.registerBuiltins()
	if err := p.unit(); err != nil {
		// A budget truncation surfaces as a bogus syntax error at the cut
		// point; report the root cause instead.
		if berr := p.s.BudgetErr(); berr != nil {
			return nil, berr
		}
		return nil, err
	}
	if berr := p.s.BudgetErr(); berr != nil {
		return nil, berr
	}
	if err := p.u.Resolve(); err != nil {
		return nil, err
	}
	return p.u, nil
}

var javaModifiers = map[string]bool{
	"public": true, "private": true, "protected": true, "static": true,
	"final": true, "abstract": true, "native": true, "synchronized": true,
	"transient": true, "volatile": true, "strictfp": true,
}

var javaPrims = map[string]stype.Prim{
	"boolean": stype.PBool,
	"byte":    stype.PI8,
	"short":   stype.PI16,
	"int":     stype.PI32,
	"long":    stype.PI64,
	"char":    stype.PChar16,
	"float":   stype.PF32,
	"double":  stype.PF64,
	"void":    stype.PVoid,
}

type parser struct {
	s *scan.Scanner
	u *stype.Universe
}

// registerBuiltins installs the predefined standard classes. Each is
// registered under both its qualified and simple name, sharing one Stype
// node so annotations and lowering agree.
func (p *parser) registerBuiltins() {
	object := &stype.Type{Kind: stype.KClass, Name: "java.lang.Object"}
	str := &stype.Type{Kind: stype.KSequence, ElemType: stype.NewPrim(stype.PChar16)}
	vector := &stype.Type{Kind: stype.KClass, Name: "java.util.Vector"}
	// §3.4: "Vector is treated automatically as an ordered collection of
	// indefinite size." The default element type is Object; programmers
	// narrow it with a collection-of annotation.
	vector.Ann.CollectionOf = "java.lang.Object"
	for _, b := range []struct {
		qualified, simple string
		ty                *stype.Type
	}{
		{"java.lang.Object", "Object", object},
		{"java.lang.String", "String", str},
		{"java.util.Vector", "Vector", vector},
	} {
		// Errors are impossible on a fresh universe with distinct names.
		_, _ = p.u.Add(b.qualified, b.ty)
		_, _ = p.u.Add(b.simple, b.ty)
	}
}

func (p *parser) errorf(at scan.Token, format string, args ...interface{}) error {
	return p.s.Errorf(at, format, args...)
}

// checkDims guards the iteratively built array dimension chains (the
// grammar here has no recursive descent, but `int x[][][]...` builds a
// nested Stype whose later recursive walks are as deep as the chain).
func (p *parser) checkDims(dims int) error {
	if dims > p.s.Budget().MaxDepth {
		return limits.Exceededf("array dimensions exceed depth budget of %d",
			p.s.Budget().MaxDepth)
	}
	return nil
}

func (p *parser) unit() error {
	for {
		t := p.s.Peek()
		if t.Kind == scan.TokEOF {
			return p.s.Err()
		}
		switch {
		case t.Kind == scan.TokIdent && t.Text == "package":
			p.s.Next()
			if _, err := p.qualifiedName(); err != nil {
				return err
			}
			if _, err := p.s.Expect(";"); err != nil {
				return err
			}
		case t.Kind == scan.TokIdent && t.Text == "import":
			p.s.Next()
			// Imports may end in ".*"; consume tokens to the semicolon.
			for {
				tok := p.s.Next()
				if tok.Kind == scan.TokEOF {
					return p.errorf(tok, "unterminated import")
				}
				if tok.Kind == scan.TokPunct && tok.Text == ";" {
					break
				}
			}
		case t.Kind == scan.TokPunct && t.Text == ";":
			p.s.Next()
		default:
			if err := p.typeDecl(); err != nil {
				return err
			}
		}
	}
}

// typeDecl parses one class or interface declaration.
func (p *parser) typeDecl() error {
	for {
		t := p.s.Peek()
		if t.Kind == scan.TokIdent && javaModifiers[t.Text] {
			p.s.Next()
			continue
		}
		break
	}
	t := p.s.Next()
	if t.Kind != scan.TokIdent || (t.Text != "class" && t.Text != "interface") {
		return p.errorf(t, "expected class or interface, found %s", t)
	}
	isInterface := t.Text == "interface"
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	node := &stype.Type{Kind: stype.KClass, Name: nameTok.Text}
	if isInterface {
		node.Kind = stype.KInterface
	}
	if p.s.AcceptIdent("extends") {
		super, err := p.qualifiedName()
		if err != nil {
			return err
		}
		node.Super = super
		// An interface may extend several interfaces; the first is the
		// Super chain head, the rest join the method set via Embeds.
		for isInterface && p.s.Accept(",") {
			extra, err := p.qualifiedName()
			if err != nil {
				return err
			}
			node.Embeds = append(node.Embeds, extra)
		}
	}
	if p.s.AcceptIdent("implements") {
		// Implemented interfaces contribute their method sets to the
		// class's object port (recorded as Embeds); marshaling by value
		// still follows fields only.
		for {
			iface, err := p.qualifiedName()
			if err != nil {
				return err
			}
			node.Embeds = append(node.Embeds, iface)
			if !p.s.Accept(",") {
				break
			}
		}
	}
	// `class PointVector extends java.util.Vector;` — the paper's Figure 1
	// uses this declaration-only shorthand; accept it alongside a body.
	if p.s.Accept(";") {
		_, err := p.u.Add(node.Name, node)
		if err != nil {
			return p.errorf(nameTok, "%v", err)
		}
		return nil
	}
	if _, err := p.s.Expect("{"); err != nil {
		return err
	}
	if err := p.members(node); err != nil {
		return err
	}
	if _, err := p.u.Add(node.Name, node); err != nil {
		return p.errorf(nameTok, "%v", err)
	}
	return nil
}

// members parses the class body up to and including the closing brace.
func (p *parser) members(node *stype.Type) error {
	for {
		if p.s.Accept("}") {
			return nil
		}
		if p.s.Peek().Kind == scan.TokEOF {
			return p.errorf(p.s.Peek(), "unterminated body of %s", node.Name)
		}
		if p.s.Accept(";") {
			continue
		}
		var isStatic bool
		for {
			t := p.s.Peek()
			if t.Kind == scan.TokIdent && javaModifiers[t.Text] {
				if t.Text == "static" {
					isStatic = true
				}
				p.s.Next()
				continue
			}
			break
		}
		// Static initializer block: `static { ... }`.
		if isStatic && p.s.Peek().Kind == scan.TokPunct && p.s.Peek().Text == "{" {
			if err := p.skipBlock(); err != nil {
				return err
			}
			continue
		}
		// Constructor: `Name(...)`.
		t := p.s.Peek()
		if t.Kind == scan.TokIdent && t.Text == node.Name {
			if n := p.s.Peek2(); n.Kind == scan.TokPunct && n.Text == "(" {
				p.s.Next()
				if err := p.skipParens(); err != nil {
					return err
				}
				if err := p.skipThrowsAndBody(); err != nil {
					return err
				}
				continue
			}
		}
		ty, err := p.typeRef()
		if err != nil {
			return err
		}
		nameTok, err := p.s.ExpectIdent()
		if err != nil {
			return err
		}
		if n := p.s.Peek(); n.Kind == scan.TokPunct && n.Text == "(" {
			// Method.
			p.s.Next()
			params, err := p.paramList()
			if err != nil {
				return err
			}
			if err := p.skipThrowsAndBody(); err != nil {
				return err
			}
			if isStatic {
				continue
			}
			m := stype.Method{Name: nameTok.Text, Params: params}
			if !(ty.Kind == stype.KPrim && ty.Prim == stype.PVoid) {
				m.Result = ty
			}
			node.Methods = append(node.Methods, m)
			continue
		}
		// Field(s): `float x, y;` with optional trailing `[]` per name and
		// optional initializers.
		for {
			fieldTy := ty
			dims := 0
			for p.s.Accept("[") {
				if err := p.checkDims(dims + 1); err != nil {
					return err
				}
				dims++
				if _, err := p.s.Expect("]"); err != nil {
					return err
				}
				fieldTy = stype.NewArray(cloneRef(fieldTy), -1)
			}
			if fieldTy == ty {
				fieldTy = cloneRef(ty)
			}
			if !isStatic {
				node.Fields = append(node.Fields, stype.Field{Name: nameTok.Text, Type: fieldTy})
			}
			if p.s.Accept("=") {
				if err := p.skipInitializer(); err != nil {
					return err
				}
			}
			if p.s.Accept(",") {
				nameTok, err = p.s.ExpectIdent()
				if err != nil {
					return err
				}
				continue
			}
			if _, err := p.s.Expect(";"); err != nil {
				return err
			}
			break
		}
	}
}

// cloneRef copies a type node so that each field use-site can carry its own
// annotations (e.g. Line.start nonnull vs. some other Point reference).
func cloneRef(ty *stype.Type) *stype.Type {
	out := *ty
	return &out
}

// typeRef parses a type use: primitive or qualified class name, with any
// number of `[]` suffixes.
func (p *parser) typeRef() (*stype.Type, error) {
	t, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	var ty *stype.Type
	if prim, ok := javaPrims[t.Text]; ok {
		ty = stype.NewPrim(prim)
	} else {
		name := t.Text
		for p.s.Accept(".") {
			part, err := p.s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			name += "." + part.Text
		}
		ty = stype.NewNamed(name)
	}
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "<" {
		return nil, p.errorf(t, "generics are not supported (pre-Java-5 declarations only)")
	}
	dims := 0
	for {
		if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "[" {
			if n := p.s.Peek2(); n.Kind == scan.TokPunct && n.Text == "]" {
				if err := p.checkDims(dims + 1); err != nil {
					return nil, err
				}
				dims++
				p.s.Next()
				p.s.Next()
				ty = stype.NewArray(ty, -1)
				continue
			}
		}
		break
	}
	return ty, nil
}

func (p *parser) paramList() ([]stype.Param, error) {
	if p.s.Accept(")") {
		return nil, nil
	}
	var params []stype.Param
	for {
		p.s.AcceptIdent("final")
		ty, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		dims := 0
		for p.s.Accept("[") {
			if err := p.checkDims(dims + 1); err != nil {
				return nil, err
			}
			dims++
			if _, err := p.s.Expect("]"); err != nil {
				return nil, err
			}
			ty = stype.NewArray(ty, -1)
		}
		params = append(params, stype.Param{Name: nameTok.Text, Type: ty})
		if p.s.Accept(",") {
			continue
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return params, nil
	}
}

// qualifiedName parses a dotted name, allowing a trailing `.*`.
func (p *parser) qualifiedName() (string, error) {
	t, err := p.s.ExpectIdent()
	if err != nil {
		return "", err
	}
	name := t.Text
	for p.s.Accept(".") {
		if p.s.Accept("*") {
			name += ".*"
			break
		}
		part, err := p.s.ExpectIdent()
		if err != nil {
			return "", err
		}
		name += "." + part.Text
	}
	return name, nil
}

// skipThrowsAndBody consumes an optional throws clause and then either a
// semicolon (abstract/native) or a brace-balanced body.
func (p *parser) skipThrowsAndBody() error {
	if p.s.AcceptIdent("throws") {
		for {
			if _, err := p.qualifiedName(); err != nil {
				return err
			}
			if !p.s.Accept(",") {
				break
			}
		}
	}
	if p.s.Accept(";") {
		return nil
	}
	return p.skipBlock()
}

// skipBlock consumes a `{ ... }` block with balanced braces.
func (p *parser) skipBlock() error {
	open, err := p.s.Expect("{")
	if err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.s.Next()
		switch {
		case t.Kind == scan.TokEOF:
			return p.errorf(open, "unterminated block")
		case t.Kind == scan.TokPunct && t.Text == "{":
			depth++
		case t.Kind == scan.TokPunct && t.Text == "}":
			depth--
		}
	}
	return nil
}

// skipParens consumes a parenthesized group with balanced parens; the
// opening paren has already been peeked at by the caller.
func (p *parser) skipParens() error {
	open, err := p.s.Expect("(")
	if err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.s.Next()
		switch {
		case t.Kind == scan.TokEOF:
			return p.errorf(open, "unterminated parameter list")
		case t.Kind == scan.TokPunct && t.Text == "(":
			depth++
		case t.Kind == scan.TokPunct && t.Text == ")":
			depth--
		}
	}
	return nil
}

// skipInitializer consumes a field initializer expression up to the
// terminating comma or semicolon at nesting depth zero. The terminator is
// left unconsumed.
func (p *parser) skipInitializer() error {
	depth := 0
	for {
		t := p.s.Peek()
		switch {
		case t.Kind == scan.TokEOF:
			return p.errorf(t, "unterminated initializer")
		case t.Kind == scan.TokPunct && (t.Text == "(" || t.Text == "{" || t.Text == "["):
			depth++
		case t.Kind == scan.TokPunct && (t.Text == ")" || t.Text == "}" || t.Text == "]"):
			depth--
		case t.Kind == scan.TokPunct && (t.Text == ";" || t.Text == ",") && depth == 0:
			return nil
		}
		p.s.Next()
	}
}

// MustParse is a test helper: it parses src and panics on error.
func MustParse(src string) *stype.Universe {
	u, err := Parse("<test>", src)
	if err != nil {
		panic(fmt.Sprintf("javaparse.MustParse: %v\nsource:\n%s", err, strings.TrimSpace(src)))
	}
	return u
}
