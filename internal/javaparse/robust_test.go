package javaparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/limits"
)

// TestParserNeverPanics mutates valid Java fragments; parsing must never
// panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`public class Point { private float x; private float y; }`,
		`public interface I { Line fitter(PointVector pts); }`,
		`class A extends B implements C, D { int x = f(1, g(2)); }`,
		`class C { static { init(); } C() {} void m() throws E { } }`,
		`package a.b.c; import java.util.*; class X {}`,
	}
	tokens := []string{
		"class", "interface", "extends", "{", "}", "(", ")", ";", ",",
		"int", "float", "[", "]", "=", "static", ".", "x", "public",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		_, _ = Parse("Fuzz.java", src[:pos]+" "+tok+" "+src[pos:])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		"}}}}",
		"class",
		"class X {",
		strings.Repeat("class A { ", 50),
		"class C { int x = { { { ; } } } }",
		"\x00class C {}",
	}
	for _, src := range garbage {
		_, _ = Parse("Garbage.java", src)
	}
}

// TestInputBudgets drives each budget axis past its limit: every case
// must surface a typed error wrapping limits.ErrBudget.
func TestInputBudgets(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget limits.Budget
	}{
		{"array dimension bomb on a field",
			"class C { int" + strings.Repeat("[]", 300) + " x; }",
			limits.Budget{}},
		{"array dimension bomb on a parameter",
			"class C { void m(int" + strings.Repeat("[]", 300) + " x) {} }",
			limits.Budget{}},
		{"oversized input",
			"class TheNameAloneBlowsTheBudget {}",
			limits.Budget{MaxBytes: 16}},
		{"token bomb",
			"class C { int a; int b; int c; int d; int e; }",
			limits.Budget{MaxTokens: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBudget("Hostile.java", tc.src, tc.budget)
			if !errors.Is(err, limits.ErrBudget) {
				t.Errorf("err = %v, want limits.ErrBudget", err)
			}
		})
	}
	if _, err := ParseBudget("Ok.java", "class C { int x; }", limits.Budget{MaxBytes: 64, MaxTokens: 16, MaxDepth: 8}); err != nil {
		t.Errorf("honest input rejected: %v", err)
	}
}
