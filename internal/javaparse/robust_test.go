package javaparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics mutates valid Java fragments; parsing must never
// panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`public class Point { private float x; private float y; }`,
		`public interface I { Line fitter(PointVector pts); }`,
		`class A extends B implements C, D { int x = f(1, g(2)); }`,
		`class C { static { init(); } C() {} void m() throws E { } }`,
		`package a.b.c; import java.util.*; class X {}`,
	}
	tokens := []string{
		"class", "interface", "extends", "{", "}", "(", ")", ";", ",",
		"int", "float", "[", "]", "=", "static", ".", "x", "public",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		_, _ = Parse("Fuzz.java", src[:pos]+" "+tok+" "+src[pos:])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		"}}}}",
		"class",
		"class X {",
		strings.Repeat("class A { ", 50),
		"class C { int x = { { { ; } } } }",
		"\x00class C {}",
	}
	for _, src := range garbage {
		_, _ = Parse("Garbage.java", src)
	}
}
