package javaparse

import (
	"strings"
	"testing"

	"repro/internal/stype"
)

// figure1 is the Java source of Figure 1 of the paper (method bodies
// elided as in the figure, with representative members filled in).
const figure1 = `
public class Point {
    public Point(float x, float y) { this.x = x; this.y = y; }
    public float distance(Point other) { return 0; }
    private float x;
    private float y;
}

public class Line {
    public Line(Point s, Point e) { start = s; end = e; }
    public float length() { return start.distance(end); }
    private Point start;
    private Point end;
}

public class PointVector extends java.util.Vector;
`

// figure5 is the ideal Java interface of Figure 5.
const figure5 = `
public interface JavaIdeal {
    Line fitter(PointVector pts);
}
`

func TestFigure1Point(t *testing.T) {
	u := MustParse(figure1)
	pt := u.Lookup("Point")
	if pt == nil || pt.Type.Kind != stype.KClass {
		t.Fatalf("Point = %+v", pt)
	}
	if len(pt.Type.Fields) != 2 {
		t.Fatalf("Point has %d fields, want 2 (constructors/methods excluded from fields)", len(pt.Type.Fields))
	}
	for i, name := range []string{"x", "y"} {
		f := pt.Type.Fields[i]
		if f.Name != name || f.Type.Prim != stype.PF32 {
			t.Errorf("field %d = %s %s", i, f.Type, f.Name)
		}
	}
	// distance is an instance method; the constructor is not recorded.
	if len(pt.Type.Methods) != 1 || pt.Type.Methods[0].Name != "distance" {
		t.Errorf("methods = %+v", pt.Type.Methods)
	}
}

func TestFigure1Line(t *testing.T) {
	u := MustParse(figure1)
	line := u.Lookup("Line")
	if line == nil {
		t.Fatal("Line missing")
	}
	if len(line.Type.Fields) != 2 {
		t.Fatalf("Line fields = %+v", line.Type.Fields)
	}
	start := line.Type.Fields[0]
	if start.Type.Kind != stype.KNamed || start.Type.Name != "Point" || start.Type.Target == nil {
		t.Errorf("start = %s", start.Type)
	}
	end := line.Type.Fields[1]
	if start.Type == end.Type {
		t.Error("start and end must have distinct nodes for per-use annotation")
	}
}

func TestFigure1PointVector(t *testing.T) {
	u := MustParse(figure1)
	pv := u.Lookup("PointVector")
	if pv == nil {
		t.Fatal("PointVector missing")
	}
	if pv.Type.Super != "java.util.Vector" {
		t.Errorf("super = %q", pv.Type.Super)
	}
}

func TestFigure5Interface(t *testing.T) {
	u := MustParse(figure1 + figure5)
	ideal := u.Lookup("JavaIdeal")
	if ideal == nil || ideal.Type.Kind != stype.KInterface {
		t.Fatalf("JavaIdeal = %+v", ideal)
	}
	if len(ideal.Type.Methods) != 1 {
		t.Fatalf("methods = %+v", ideal.Type.Methods)
	}
	m := ideal.Type.Methods[0]
	if m.Name != "fitter" || m.Result == nil || m.Result.Name != "Line" {
		t.Errorf("method = %s", m.Signature())
	}
	if len(m.Params) != 1 || m.Params[0].Type.Name != "PointVector" {
		t.Errorf("params = %+v", m.Params)
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	u := MustParse(`public class Empty {}`)
	vec := u.Lookup("java.util.Vector")
	if vec == nil {
		t.Fatal("Vector builtin missing")
	}
	if vec.Type.Ann.CollectionOf != "java.lang.Object" {
		t.Errorf("Vector default annotation = %+v", vec.Type.Ann)
	}
	if u.Lookup("Vector") == nil || u.Lookup("Vector").Type != vec.Type {
		t.Error("short name Vector should share the builtin node")
	}
	str := u.Lookup("java.lang.String")
	if str == nil || str.Type.Kind != stype.KSequence || str.Type.ElemType.Prim != stype.PChar16 {
		t.Errorf("String builtin = %+v", str)
	}
}

func TestPrimitives(t *testing.T) {
	u := MustParse(`
		class Prims {
			boolean a; byte b; short c; int d; long e;
			char f; float g; double h;
		}
	`)
	want := []stype.Prim{
		stype.PBool, stype.PI8, stype.PI16, stype.PI32, stype.PI64,
		stype.PChar16, stype.PF32, stype.PF64,
	}
	fields := u.Lookup("Prims").Type.Fields
	for i, w := range want {
		if fields[i].Type.Prim != w {
			t.Errorf("field %d = %s, want %s", i, fields[i].Type, w)
		}
	}
}

func TestStaticMembersSkipped(t *testing.T) {
	u := MustParse(`
		class C {
			static int counter = 0;
			static void reset() { counter = 0; }
			static { counter = 1; }
			int live;
		}
	`)
	c := u.Lookup("C").Type
	if len(c.Fields) != 1 || c.Fields[0].Name != "live" {
		t.Errorf("fields = %+v", c.Fields)
	}
	if len(c.Methods) != 0 {
		t.Errorf("methods = %+v", c.Methods)
	}
}

func TestFieldInitializersSkipped(t *testing.T) {
	u := MustParse(`
		class C {
			int a = 1 + 2;
			int[] b = { 1, 2, 3 };
			String s = "x, y; z";
			float c = f(1, g(2));
			int d;
		}
	`)
	c := u.Lookup("C").Type
	if len(c.Fields) != 5 {
		t.Fatalf("fields = %+v", c.Fields)
	}
}

func TestMultipleFieldDeclarators(t *testing.T) {
	u := MustParse(`class P { float x, y; }`)
	p := u.Lookup("P").Type
	if len(p.Fields) != 2 || p.Fields[1].Name != "y" {
		t.Fatalf("fields = %+v", p.Fields)
	}
}

func TestArrays(t *testing.T) {
	u := MustParse(`
		class A {
			int[] ints;
			float[][] grid;
			double trailing[];
			Point[] pts;
		}
		class Point { float x; float y; }
	`)
	a := u.Lookup("A").Type
	if a.Fields[0].Type.Kind != stype.KArray {
		t.Errorf("ints = %s", a.Fields[0].Type)
	}
	grid := a.Fields[1].Type
	if grid.Kind != stype.KArray || grid.ElemType.Kind != stype.KArray {
		t.Errorf("grid = %s", grid)
	}
	if a.Fields[2].Type.Kind != stype.KArray {
		t.Errorf("trailing[] = %s", a.Fields[2].Type)
	}
}

func TestMethodsWithBodiesAndThrows(t *testing.T) {
	u := MustParse(`
		class C {
			public int compute(int x) throws java.io.IOException, Bad {
				if (x > 0) { return x; }
				return -x;
			}
			protected native void poke(long addr);
			abstract Point make();
		}
		class Point { float x; float y; }
		class Bad {}
	`)
	c := u.Lookup("C").Type
	if len(c.Methods) != 3 {
		t.Fatalf("methods = %+v", c.Methods)
	}
	if c.Methods[0].Result == nil || c.Methods[0].Result.Prim != stype.PI32 {
		t.Errorf("compute result = %s", c.Methods[0].Result)
	}
	if c.Methods[1].Result != nil {
		t.Errorf("poke result = %s", c.Methods[1].Result)
	}
}

func TestInterfaceMethods(t *testing.T) {
	u := MustParse(`
		interface Shape {
			double area();
			void scale(double factor);
		}
	`)
	s := u.Lookup("Shape").Type
	if s.Kind != stype.KInterface || len(s.Methods) != 2 {
		t.Fatalf("Shape = %+v", s)
	}
}

func TestPackageAndImports(t *testing.T) {
	u := MustParse(`
		package com.example.geo;
		import java.util.Vector;
		import java.io.*;
		public class G { int x; }
	`)
	if u.Lookup("G") == nil {
		t.Error("class after package/imports lost")
	}
}

func TestExtendsAndImplements(t *testing.T) {
	u := MustParse(`
		class Base { int b; }
		interface I1 {}
		interface I2 {}
		class Derived extends Base implements I1, I2 { int d; }
	`)
	d := u.Lookup("Derived").Type
	if d.Super != "Base" {
		t.Errorf("super = %q", d.Super)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`class C { Vector<Point> pts; }`, "generics"},
		{`class C { Undeclared u; }`, "unresolved"},
		{`class C { int x`, "end of input"},
		{`class C {} class C {}`, "duplicate"},
		{`int x;`, "expected class or interface"},
	}
	for _, c := range cases {
		_, err := Parse("T.java", c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestQualifiedTypeReference(t *testing.T) {
	u := MustParse(`class C { java.util.Vector v; }`)
	v := u.Lookup("C").Type.Fields[0]
	if v.Type.Name != "java.util.Vector" || v.Type.Target == nil {
		t.Errorf("v = %+v", v.Type)
	}
}

func TestRecursiveClass(t *testing.T) {
	// Figure 8(a): a recursive Java list.
	u := MustParse(`
		public class IntList {
			int value;
			IntList next;
		}
	`)
	l := u.Lookup("IntList").Type
	if l.Fields[1].Type.Name != "IntList" || l.Fields[1].Type.Target == nil {
		t.Errorf("next = %+v", l.Fields[1].Type)
	}
}

// TestImplementsRecorded: implemented interfaces contribute their method
// sets to the class's object port, so the parser records them as Embeds.
func TestImplementsRecorded(t *testing.T) {
	u := MustParse(`
		interface I1 { void a(); }
		interface I2 { void b(); }
		class C implements I1, I2 { int x; }
	`)
	d := u.Lookup("C").Type
	if got := strings.Join(d.Embeds, ","); got != "I1,I2" {
		t.Errorf("embeds = %q", got)
	}
}

// TestInterfaceMultiExtends: an interface may extend several interfaces;
// the first is the Super, the rest are Embeds.
func TestInterfaceMultiExtends(t *testing.T) {
	u := MustParse(`
		interface A { void a(); }
		interface B { void b(); }
		interface C extends A, B { void c(); }
	`)
	d := u.Lookup("C").Type
	if d.Super != "A" {
		t.Errorf("super = %q", d.Super)
	}
	if got := strings.Join(d.Embeds, ","); got != "B" {
		t.Errorf("embeds = %q", got)
	}
}
