package stream

import (
	"bytes"
	"testing"

	"repro/internal/mtype"
	"repro/internal/transcode"
	"repro/internal/value"
	"repro/internal/wire"
)

// FuzzStreamOracle drives fuzzer-chosen bytes through the streaming
// engine in fuzzer-chosen splits and holds it to the one-shot
// transcoder's behavior: byte-identical output when the one-shot path
// succeeds, an error whenever it errors. This is the resume-point state
// machine's contract — chunking must be invisible.
func FuzzStreamOracle(f *testing.F) {
	fixtures := []*struct {
		name string
		a    *mtype.Type
		b    *mtype.Type
	}{
		{"permuted-records", mtype.NewList(mtype.RecordOf(i32(), f64t())), mtype.NewList(mtype.RecordOf(f64t(), i32()))},
		{"scalar-bulk", mtype.NewList(i32()), mtype.NewList(i32())},
		{"variable-strings", mtype.NewList(mtype.RecordOf(strT(), i16())), mtype.NewList(mtype.RecordOf(i16(), strT()))},
	}
	xcs := make([]*transcode.Transcoder, len(fixtures))
	for i, fx := range fixtures {
		xcs[i] = buildXC(f, fx.a, fx.b)
	}

	// Seed with valid payloads, a truncation, and trailing garbage.
	recs := []value.Value{
		value.NewRecord(value.NewInt(1), value.Real{V: 0.5}),
		value.NewRecord(value.NewInt(-2), value.Real{V: 3.75}),
	}
	valid, err := wire.Marshal(fixtures[0].a, value.FromSlice(recs))
	if err != nil {
		f.Fatal(err)
	}
	strs, err := wire.Marshal(fixtures[2].a, value.FromSlice([]value.Value{
		value.NewRecord(str("seed"), value.NewInt(7)),
	}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), uint64(1), valid)
	f.Add(uint8(0), uint64(99), valid[:len(valid)-3])
	f.Add(uint8(0), uint64(7), append(append([]byte(nil), valid...), 0xcc))
	f.Add(uint8(1), uint64(3), []byte{2, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add(uint8(2), uint64(13), strs)

	f.Fuzz(func(t *testing.T, which uint8, seed uint64, src []byte) {
		xc := xcs[int(which)%len(xcs)]
		want, wantErr := xc.Transcode(src)

		eng := New(xc, Options{})
		defer eng.Release()
		var got []byte
		var gotErr error
		s := seed | 1
		for off := 0; off < len(src) && gotErr == nil; {
			s = s*6364136223846793005 + 1442695040888963407
			n := 1 + int(s>>33)%127
			if off+n > len(src) {
				n = len(src) - off
			}
			gotErr = eng.Push(src[off : off+n])
			if gotErr == nil {
				got = append(got, eng.Take()...)
			}
			off += n
		}
		if gotErr == nil {
			var tail []byte
			tail, gotErr = eng.Finish()
			got = append(got, tail...)
		}

		if wantErr != nil {
			if gotErr == nil {
				t.Fatalf("one-shot errored (%v) but stream succeeded on % x", wantErr, src)
			}
			return
		}
		if gotErr != nil {
			t.Fatalf("stream error %v on % x (one-shot succeeded)", gotErr, src)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("output mismatch\nsrc:    % x\noneshot: % x\nstream:  % x", src, want, got)
		}
	})
}
