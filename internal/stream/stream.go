// Package stream executes fused transcode programs chunk-at-a-time, so
// length-prefixed CDR sequences of any size flow through a compiled
// coercion in constant memory. It is the resume-point layer over
// internal/transcode: a Transcoder here feeds arbitrary byte splits into
// the per-element program exposed by transcode.SeqStep, holding only the
// current incomplete element and the unflushed output tail in pooled
// scratch.
//
// The state machine has three resume points:
//
//	count — the u32 element count has not fully arrived;
//	elems — count known, elements convert as their bytes complete;
//	done  — count exhausted; any further input is trailing garbage.
//
// Alignment makes resumption subtle: CDR aligns every primitive to its
// size relative to the payload start, so a window cannot start at an
// arbitrary byte. Every CDR alignment divides 8, which means a subtree's
// byte image depends only on its start offset mod 8 — the engine
// therefore compacts its input window and flushes its output window only
// in multiples of 8 bytes, and window-relative offsets stay congruent to
// payload-relative offsets for every alignment decision the compiled
// program makes.
//
// Pairs whose root is not a streamable sequence (records, choices, tree
// constructs) degrade to buffered mode: input accumulates up to
// Options.MaxBuffer and converts in one shot at Finish; payloads past
// the cap fail with ErrTooLarge. This is the fallback matrix's bottom
// row — correctness everywhere, constant memory where the shape allows.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/transcode"
	"repro/internal/wire"
)

// DefaultMaxBuffer bounds buffered-fallback payloads and the input
// window a single element may occupy (16 MiB, matching orb's frame cap:
// anything that fit in a frame before still fits in the fallback).
const DefaultMaxBuffer = 16 << 20

// ErrTooLarge is returned when a payload needs buffering — a
// non-streamable pair, or one element of a streamable one — beyond the
// configured cap. It is the typed signal that a relay must either stream
// end-to-end or refuse, never silently balloon.
var ErrTooLarge = errors.New("stream: payload exceeds buffered-fallback cap")

// Options configures a streaming transcoder.
type Options struct {
	// MaxBuffer caps buffered-fallback payloads and the bytes one
	// incomplete element may pin in the input window. 0 selects
	// DefaultMaxBuffer.
	MaxBuffer int
}

func (o Options) withDefaults() Options {
	if o.MaxBuffer <= 0 {
		o.MaxBuffer = DefaultMaxBuffer
	}
	return o
}

// Engine states.
const (
	stateCount    = iota // awaiting the u32 sequence count
	stateElems           // converting elements
	stateDone            // sequence complete; trailing input is an error
	stateBuffered        // non-streamable pair: accumulate and one-shot
	stateFailed          // terminal error recorded in err
)

// Transcoder pushes source bytes in arbitrary splits through a compiled
// pair. Not safe for concurrent use; wrap with Pipe for a concurrent
// Writer/Reader pair.
type Transcoder struct {
	xc  *transcode.Transcoder
	max int

	state     int
	err       error
	in        []byte // input window; in[0] is 8-aligned in the payload
	off       int    // window-relative parse cursor
	out       []byte // unflushed output; out[0] is 8-aligned in the output
	taken     int    // prefix of out already handed to the consumer
	remaining int    // elements left to convert
	streamed  bool   // true once any element streamed (stats only)
}

// enginePool recycles engines with their grown windows, so a relay
// processing many streams reaches a zero-allocation steady state.
var enginePool = sync.Pool{New: func() any { return new(Transcoder) }}

// maxPooledWindow caps the scratch retained by a pooled engine; windows
// grown past it (one giant element) are dropped rather than pinned.
const maxPooledWindow = 1 << 20

// New returns a streaming transcoder over a compiled pair, drawing
// pooled scratch. Release it with Release when the stream is finished or
// abandoned.
func New(xc *transcode.Transcoder, opts Options) *Transcoder {
	t := enginePool.Get().(*Transcoder)
	t.Reset(xc, opts)
	return t
}

// Reset re-arms the engine for a new stream over the given pair,
// keeping its scratch.
func (t *Transcoder) Reset(xc *transcode.Transcoder, opts Options) {
	opts = opts.withDefaults()
	t.xc = xc
	t.max = opts.MaxBuffer
	t.err = nil
	t.in = t.in[:0]
	t.out = t.out[:0]
	t.off, t.taken, t.remaining = 0, 0, 0
	t.streamed = false
	if xc != nil && xc.SeqStreamable() {
		t.state = stateCount
	} else {
		t.state = stateBuffered
	}
}

// Release returns the engine and its scratch to the pool. The engine
// must not be used afterwards; output slices previously returned by
// Take/Finish are invalidated.
func (t *Transcoder) Release() {
	t.xc = nil
	t.err = nil
	if cap(t.in) > maxPooledWindow {
		t.in = nil
	}
	if cap(t.out) > maxPooledWindow {
		t.out = nil
	}
	t.in, t.out = t.in[:0], t.out[:0]
	enginePool.Put(t)
}

// Streamed reports whether any element took the chunk-at-a-time path
// (false for buffered fallback). Valid any time.
func (t *Transcoder) Streamed() bool { return t.streamed }

// Buffered reports whether the engine is in buffered-fallback mode.
func (t *Transcoder) Buffered() bool { return t.state == stateBuffered }

// Push feeds the next split of source bytes. Converted output becomes
// available through Take. A non-nil error is terminal.
func (t *Transcoder) Push(p []byte) error {
	if t.err != nil {
		return t.err
	}
	t.reclaim()
	if t.state == stateBuffered {
		if len(t.in)+len(p) > t.max {
			return t.fail(fmt.Errorf("%w: non-streamable pair over %d bytes (cap %d)", ErrTooLarge, len(t.in)+len(p), t.max))
		}
		t.in = append(t.in, p...)
		return nil
	}
	t.in = append(t.in, p...)
	return t.advance()
}

// Take returns converted output ready for the consumer — always a
// multiple of 8 bytes so the retained tail keeps its alignment phase.
// The slice aliases engine scratch and is valid only until the next
// Push/Finish/Release call. Returns nil when nothing is flushable.
func (t *Transcoder) Take() []byte {
	n := len(t.out) &^ 7
	if n <= t.taken {
		return nil
	}
	ret := t.out[t.taken:n]
	t.taken = n
	return ret
}

// Finish declares end of input, validates the stream consumed exactly
// one whole value, and returns the final output bytes (the unflushed
// tail in streaming mode; the entire conversion in buffered mode). The
// slice aliases engine scratch and is valid until Release.
func (t *Transcoder) Finish() ([]byte, error) {
	if t.err != nil {
		return nil, t.err
	}
	t.reclaim()
	switch t.state {
	case stateBuffered:
		out, err := t.xc.TranscodeAppend(t.out, t.in)
		if err != nil {
			return nil, t.fail(err)
		}
		t.out = out
		t.state = stateDone
		return t.out, nil
	case stateCount:
		return nil, t.fail(fmt.Errorf("stream: %w in sequence count", wire.ErrShort))
	case stateElems:
		return nil, t.fail(fmt.Errorf("stream: %w with %d elements missing", wire.ErrShort, t.remaining))
	case stateDone:
		ret := t.out[t.taken:]
		t.taken = len(t.out)
		return ret, nil
	}
	return nil, t.fail(errors.New("stream: finish on failed transcoder"))
}

func (t *Transcoder) fail(err error) error {
	t.state = stateFailed
	t.err = err
	return err
}

// reclaim drops output the consumer has taken, keeping the unflushed
// tail at the front of the buffer (its length stays congruent to the
// absolute output offset mod 8 because takes are multiples of 8).
func (t *Transcoder) reclaim() {
	if t.taken == 0 {
		return
	}
	rest := copy(t.out, t.out[t.taken:])
	t.out = t.out[:rest]
	t.taken = 0
}

// advance runs the state machine over the current window.
func (t *Transcoder) advance() error {
	for {
		switch t.state {
		case stateCount:
			if len(t.in) < 4 {
				return nil
			}
			n := binary.LittleEndian.Uint32(t.in)
			if err := transcode.CheckSeqCount(uint64(n)); err != nil {
				return t.fail(err)
			}
			t.out = binary.LittleEndian.AppendUint32(t.out, n)
			t.off = 4
			t.remaining = int(n)
			t.state = stateElems
		case stateElems:
			if t.remaining == 0 {
				t.state = stateDone
				continue
			}
			out, off, done, err := t.xc.SeqStep(t.out, t.in, t.off, t.remaining)
			t.out, t.off = out, off
			t.remaining -= done
			if done > 0 {
				t.streamed = true
			}
			if err != nil {
				return t.fail(err)
			}
			if t.remaining == 0 {
				t.state = stateDone
				continue
			}
			// The next element is incomplete. It must fit the window cap
			// — an element is the unit of scratch, not the payload.
			if len(t.in)-t.off > t.max {
				return t.fail(fmt.Errorf("%w: single element over %d bytes", ErrTooLarge, t.max))
			}
			t.compactIn()
			return nil
		case stateDone:
			if extra := len(t.in) - t.off; extra > 0 {
				return t.fail(fmt.Errorf("stream: %d trailing bytes", extra))
			}
			return nil
		}
	}
}

// compactIn drops consumed input in multiples of 8 so in[0] keeps its
// alignment phase within the payload.
func (t *Transcoder) compactIn() {
	drop := t.off &^ 7
	if drop == 0 {
		return
	}
	rest := copy(t.in, t.in[drop:])
	t.in = t.in[:rest]
	t.off -= drop
}
