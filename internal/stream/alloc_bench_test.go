package stream

import (
	"testing"

	"repro/internal/mtype"
	"repro/internal/value"
	"repro/internal/wire"
)

func BenchmarkSteadyPush(b *testing.B) {
	a := mtype.NewList(mtype.RecordOf(i32(), f64t()))
	bb := mtype.NewList(mtype.RecordOf(f64t(), i32()))
	xc := buildXC(b, a, bb)
	vs := make([]value.Value, 256)
	for i := range vs {
		vs[i] = value.NewRecord(value.NewInt(int64(i)), value.Real{V: 1.5})
	}
	src, _ := wire.Marshal(a, value.FromSlice(vs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(xc, Options{})
		for off := 0; off < len(src); off += 512 {
			end := off + 512
			if end > len(src) {
				end = len(src)
			}
			if err := eng.Push(src[off:end]); err != nil {
				b.Fatal(err)
			}
			eng.Take()
		}
		if _, err := eng.Finish(); err != nil {
			b.Fatal(err)
		}
		eng.Release()
	}
}
