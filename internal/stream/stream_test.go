package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/testutil"
	"repro/internal/transcode"
	"repro/internal/value"
	"repro/internal/wire"
)

func i32() *mtype.Type    { return mtype.NewIntegerBits(32, true) }
func i16() *mtype.Type    { return mtype.NewIntegerBits(16, true) }
func f64t() *mtype.Type   { return mtype.NewFloat64() }
func latin1() *mtype.Type { return mtype.NewCharacter(mtype.RepLatin1) }
func strT() *mtype.Type   { return mtype.NewList(latin1()) }

func str(s string) value.Value {
	var vs []value.Value
	for _, r := range s {
		vs = append(vs, value.Char{R: r})
	}
	return value.FromSlice(vs)
}

// buildXC compiles the fused transcoder for an equivalent pair.
func buildXC(t testing.TB, a, b *mtype.Type) *transcode.Transcoder {
	t.Helper()
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(a, b)
	if !ok {
		t.Fatalf("no match:\n%s", c.Explain(a, b, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	xc, err := transcode.Compile(p, a, b)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return xc
}

// recListPair is the workhorse fixture: a sequence of records whose
// fields permute, so elements re-emit structurally (no bulk copy).
func recListPair(t *testing.T) (*mtype.Type, *mtype.Type, *transcode.Transcoder) {
	t.Helper()
	a := mtype.NewList(mtype.RecordOf(i32(), f64t()))
	b := mtype.NewList(mtype.RecordOf(f64t(), i32()))
	return a, b, buildXC(t, a, b)
}

func recListPayload(t *testing.T, a *mtype.Type, n int) []byte {
	t.Helper()
	vs := make([]value.Value, n)
	for i := range vs {
		vs[i] = value.NewRecord(value.NewInt(int64(i)-3), value.Real{V: float64(i) * 1.5})
	}
	src, err := wire.Marshal(a, value.FromSlice(vs))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return src
}

// runSplits drives src through a fresh engine in the given split sizes
// (cycling), returning the concatenated output.
func runSplits(t *testing.T, xc *transcode.Transcoder, opts Options, src []byte, sizes ...int) ([]byte, error) {
	t.Helper()
	eng := New(xc, opts)
	defer eng.Release()
	var got []byte
	si := 0
	for off := 0; off < len(src); {
		n := sizes[si%len(sizes)]
		si++
		if n <= 0 {
			n = 1
		}
		if off+n > len(src) {
			n = len(src) - off
		}
		if err := eng.Push(src[off : off+n]); err != nil {
			return nil, err
		}
		got = append(got, eng.Take()...)
		off += n
	}
	tail, err := eng.Finish()
	if err != nil {
		return nil, err
	}
	return append(got, tail...), nil
}

func TestArbitrarySplitsMatchOneShot(t *testing.T) {
	a, _, xc := recListPair(t)
	if !xc.SeqStreamable() {
		t.Fatal("record-list pair should be streamable")
	}
	src := recListPayload(t, a, 257)
	want, err := xc.Transcode(src)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	for _, sizes := range [][]int{{1}, {2}, {3}, {7}, {8}, {13}, {64}, {1, 9, 2, 31}, {len(src)}} {
		got, err := runSplits(t, xc, Options{}, src, sizes...)
		if err != nil {
			t.Fatalf("splits %v: %v", sizes, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("splits %v: output mismatch (%d vs %d bytes)", sizes, len(got), len(want))
		}
	}
}

func TestVariableLengthElements(t *testing.T) {
	// String elements: element sizes differ, exercising the incomplete-
	// element resume path heavily.
	a := mtype.NewList(mtype.RecordOf(strT(), i16()))
	b := mtype.NewList(mtype.RecordOf(i16(), strT()))
	xc := buildXC(t, a, b)
	vs := []value.Value{
		value.NewRecord(str(""), value.NewInt(1)),
		value.NewRecord(str("x"), value.NewInt(-2)),
		value.NewRecord(str("a longer string that spans several chunks when split small"), value.NewInt(3)),
		value.NewRecord(str("tail"), value.NewInt(4)),
	}
	src, err := wire.Marshal(a, value.FromSlice(vs))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want, err := xc.Transcode(src)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	for _, sizes := range [][]int{{1}, {3}, {5, 1, 17}} {
		got, err := runSplits(t, xc, Options{}, src, sizes...)
		if err != nil {
			t.Fatalf("splits %v: %v", sizes, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("splits %v: output mismatch", sizes)
		}
	}
}

func TestBulkScalarList(t *testing.T) {
	a := mtype.NewList(i32())
	xc := buildXC(t, a, mtype.NewList(i32()))
	vs := make([]value.Value, 1000)
	for i := range vs {
		vs[i] = value.NewInt(int64(i))
	}
	src, err := wire.Marshal(a, value.FromSlice(vs))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := runSplits(t, xc, Options{}, src, 1023)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("identity scalar list must round-trip byte-identically")
	}
}

func TestStreamedFlag(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 4)
	eng := New(xc, Options{})
	defer eng.Release()
	if eng.Buffered() {
		t.Fatal("streamable pair must not start buffered")
	}
	if err := eng.Push(src); err != nil {
		t.Fatalf("push: %v", err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if !eng.Streamed() {
		t.Fatal("elements converted chunk-at-a-time must set Streamed")
	}
}

func TestBufferedFallback(t *testing.T) {
	// Record root: no streamable form, so the engine buffers and
	// one-shots at Finish.
	a := mtype.RecordOf(i32(), f64t())
	b := mtype.RecordOf(f64t(), i32())
	xc := buildXC(t, a, b)
	src, err := wire.Marshal(a, value.NewRecord(value.NewInt(9), value.Real{V: 2.5}))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want, err := xc.Transcode(src)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	eng := New(xc, Options{})
	defer eng.Release()
	if !eng.Buffered() {
		t.Fatal("record root must take buffered fallback")
	}
	for _, b := range src {
		if err := eng.Push([]byte{b}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	got, err := eng.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("buffered fallback output differs from one-shot")
	}
	if eng.Streamed() {
		t.Fatal("buffered fallback must not report Streamed")
	}
}

func TestBufferedFallbackTooLarge(t *testing.T) {
	a := mtype.RecordOf(i32(), f64t())
	xc := buildXC(t, a, mtype.RecordOf(f64t(), i32()))
	eng := New(xc, Options{MaxBuffer: 16})
	defer eng.Release()
	err := eng.Push(make([]byte, 17))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestElementOverWindowCap(t *testing.T) {
	// One giant string element cannot complete within MaxBuffer.
	a := mtype.NewList(mtype.RecordOf(strT(), i16()))
	b := mtype.NewList(mtype.RecordOf(i16(), strT()))
	xc := buildXC(t, a, b)
	big := make([]value.Value, 300)
	for i := range big {
		big[i] = value.Char{R: 'x'}
	}
	src, err := wire.Marshal(a, value.FromSlice([]value.Value{
		value.NewRecord(value.FromSlice(big), value.NewInt(1)),
	}))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	eng := New(xc, Options{MaxBuffer: 64})
	defer eng.Release()
	var perr error
	for off := 0; off < len(src) && perr == nil; off += 32 {
		end := off + 32
		if end > len(src) {
			end = len(src)
		}
		perr = eng.Push(src[off:end])
	}
	if perr == nil {
		_, perr = eng.Finish()
	}
	if !errors.Is(perr, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", perr)
	}
}

func TestTrailingBytes(t *testing.T) {
	a, _, xc := recListPair(t)
	src := append(recListPayload(t, a, 3), 0xcc)
	_, err := runSplits(t, xc, Options{}, src, 8)
	if err == nil {
		t.Fatal("trailing byte must fail")
	}
}

func TestShortInput(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 3)
	for _, cut := range []int{0, 2, 4, len(src) - 1} {
		eng := New(xc, Options{})
		if err := eng.Push(src[:cut]); err != nil {
			t.Fatalf("cut %d: push: %v", cut, err)
		}
		_, err := eng.Finish()
		if !errors.Is(err, wire.ErrShort) {
			t.Fatalf("cut %d: got %v, want wrapped wire.ErrShort", cut, err)
		}
		eng.Release()
	}
}

func TestCorruptCount(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 2)
	// Claim far more elements than MaxListLen allows.
	src[0], src[1], src[2], src[3] = 0xff, 0xff, 0xff, 0xff
	_, err := runSplits(t, xc, Options{}, src, 4)
	if err == nil {
		t.Fatal("oversized count must fail")
	}
}

func TestEngineReuseAfterRelease(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 50)
	want, err := xc.Transcode(src)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	for i := 0; i < 10; i++ {
		got, err := runSplits(t, xc, Options{}, src, 17)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: output mismatch", i)
		}
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 500)
	want, err := xc.Transcode(src)
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	// A tiny window forces the writer to block on the reader repeatedly.
	pw, pr := Pipe(New(xc, Options{}), 64)
	werr := make(chan error, 1)
	go func() {
		for off := 0; off < len(src); off += 33 {
			end := off + 33
			if end > len(src) {
				end = len(src)
			}
			if _, err := pw.Write(src[off:end]); err != nil {
				werr <- err
				return
			}
		}
		werr <- pw.Close()
	}()
	got, rerr := io.ReadAll(pr)
	if rerr != nil {
		t.Fatalf("read: %v", rerr)
	}
	if err := <-werr; err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pipe output differs from one-shot")
	}
	_ = pr.Close()
}

func TestPipeBackpressure(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 2000)
	pw, pr := Pipe(New(xc, Options{}), 128)
	wrote := make(chan struct{})
	go func() {
		for off := 0; off < len(src); off += 1024 {
			end := off + 1024
			if end > len(src) {
				end = len(src)
			}
			if _, err := pw.Write(src[off:end]); err != nil {
				break
			}
		}
		_ = pw.Close()
		close(wrote)
	}()
	// The writer must stall against the 128-byte window long before
	// pushing ~32 KiB of converted output.
	select {
	case <-wrote:
		t.Fatal("writer finished without reader progress: no backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := io.ReadAll(pr); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-wrote
	_ = pr.Close()
}

func TestPipeReaderGaveUp(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 2000)
	pw, pr := Pipe(New(xc, Options{}), 64)
	_ = pr.Close()
	var err error
	for off := 0; off < len(src) && err == nil; off += 1024 {
		end := off + 1024
		if end > len(src) {
			end = len(src)
		}
		_, err = pw.Write(src[off:end])
	}
	if !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("got %v, want ErrPipeClosed", err)
	}
}

func TestPipeValidationErrorReachesReader(t *testing.T) {
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 3)
	pw, pr := Pipe(New(xc, Options{}), 0)
	if _, err := pw.Write(src[:len(src)-2]); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := pw.Close(); !errors.Is(err, wire.ErrShort) {
		t.Fatalf("close: got %v, want wrapped wire.ErrShort", err)
	}
	if _, err := io.ReadAll(pr); !errors.Is(err, wire.ErrShort) {
		t.Fatalf("read: got %v, want wrapped wire.ErrShort", err)
	}
	_ = pr.Close()
}

// TestSteadyStateAllocs pins the pooled hot path: pushing chunks through
// a reused engine must not allocate once windows are grown.
func TestSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	a, _, xc := recListPair(t)
	src := recListPayload(t, a, 256)
	run := func() {
		eng := New(xc, Options{})
		for off := 0; off < len(src); off += 512 {
			end := off + 512
			if end > len(src) {
				end = len(src)
			}
			if err := eng.Push(src[off:end]); err != nil {
				t.Fatalf("push: %v", err)
			}
			eng.Take()
		}
		if _, err := eng.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		eng.Release()
	}
	run() // warm pools and grow windows
	allocs := testing.AllocsPerRun(50, run)
	if allocs > 4 {
		t.Fatalf("steady-state stream conversion allocates %.1f objects per run, want <= 4", allocs)
	}
}
