package stream

import (
	"errors"
	"io"
	"sync"
)

// DefaultPipeWindow bounds the converted bytes a Pipe holds between its
// writer and reader before Write blocks (1 MiB).
const DefaultPipeWindow = 1 << 20

// ErrPipeClosed is returned by writes after the reader side closed.
var ErrPipeClosed = errors.New("stream: pipe closed by reader")

// Pipe wraps a streaming Transcoder in a concurrent Writer/Reader pair:
// the writer pushes source bytes in arbitrary splits, the reader pulls
// converted bytes, and a bounded window between them provides
// backpressure — a slow reader blocks the writer once window bytes of
// converted output are pending. window <= 0 selects DefaultPipeWindow.
//
// The pair owns the engine: it is released once both ends are closed.
// Close the writer to finish the stream (running final validation);
// CloseWithError on either end aborts it.
func Pipe(t *Transcoder, window int) (*PipeWriter, *PipeReader) {
	if window <= 0 {
		window = DefaultPipeWindow
	}
	p := &pipe{t: t, window: window}
	p.cond.L = &p.mu
	return &PipeWriter{p: p}, &PipeReader{p: p}
}

type pipe struct {
	mu     sync.Mutex
	cond   sync.Cond
	t      *Transcoder
	buf    []byte // converted bytes awaiting the reader
	ri     int    // read cursor into buf
	window int
	werr   error // writer-side terminal error (incl. transcode failures)
	rerr   error // reader-side close reason
	wdone  bool  // writer closed; buf holds everything remaining
	closed int   // ends closed; engine released at 2
}

func (p *pipe) release() {
	p.closed++
	if p.closed == 2 && p.t != nil {
		p.t.Release()
		p.t = nil
	}
}

// PipeWriter is the push side of a Pipe.
type PipeWriter struct{ p *pipe }

// Write pushes one source split, blocking while the converted backlog
// exceeds the pipe window. It returns the transcoder's terminal error if
// conversion fails, or ErrPipeClosed if the reader gave up.
func (w *PipeWriter) Write(b []byte) (int, error) {
	p := w.p
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf)-p.ri > p.window && p.rerr == nil && p.werr == nil && !p.wdone {
		p.cond.Wait()
	}
	if p.werr != nil {
		return 0, p.werr
	}
	if p.rerr != nil {
		return 0, p.rerr
	}
	if p.wdone {
		return 0, errors.New("stream: write after close")
	}
	if err := p.t.Push(b); err != nil {
		p.werr = err
		p.cond.Broadcast()
		return 0, err
	}
	if out := p.t.Take(); len(out) > 0 {
		p.buf = append(p.buf, out...)
		p.cond.Broadcast()
	}
	return len(b), nil
}

// Close finishes the stream: final validation runs, the tail is handed
// to the reader, and the reader sees io.EOF once it drains. The
// validation error, if any, is returned here and to the reader.
func (w *PipeWriter) Close() error {
	p := w.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wdone {
		return p.werr
	}
	p.wdone = true
	if p.werr == nil && p.rerr == nil {
		tail, err := p.t.Finish()
		if err != nil {
			p.werr = err
		} else {
			p.buf = append(p.buf, tail...)
		}
	}
	p.release()
	p.cond.Broadcast()
	return p.werr
}

// CloseWithError aborts the stream; the reader observes err.
func (w *PipeWriter) CloseWithError(err error) error {
	if err == nil {
		return w.Close()
	}
	p := w.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wdone {
		return p.werr
	}
	p.wdone = true
	p.werr = err
	p.release()
	p.cond.Broadcast()
	return nil
}

// PipeReader is the pull side of a Pipe.
type PipeReader struct {
	p      *pipe
	closed bool
}

// Read pulls converted bytes, blocking until some are available, the
// writer closes (io.EOF after the backlog drains), or the stream fails.
func (r *PipeReader) Read(b []byte) (int, error) {
	p := r.p
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.ri < len(p.buf) {
			n := copy(b, p.buf[p.ri:])
			p.ri += n
			if p.ri == len(p.buf) {
				p.buf = p.buf[:0]
				p.ri = 0
			}
			p.cond.Broadcast()
			return n, nil
		}
		if p.werr != nil {
			return 0, p.werr
		}
		if p.rerr != nil {
			return 0, p.rerr
		}
		if p.wdone {
			return 0, io.EOF
		}
		p.cond.Wait()
	}
}

// Close releases the reader; a still-active writer fails with
// ErrPipeClosed.
func (r *PipeReader) Close() error { return r.CloseWithError(ErrPipeClosed) }

// CloseWithError releases the reader with a specific abort reason.
func (r *PipeReader) CloseWithError(err error) error {
	p := r.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if p.rerr == nil {
		if err == nil {
			err = ErrPipeClosed
		}
		p.rerr = err
	}
	p.release()
	p.cond.Broadcast()
	return nil
}
