//go:build race

package orb

// raceEnabled reports that the race detector is active. Its
// instrumentation adds allocations of its own, so the allocation-ceiling
// tests skip themselves under -race; the CI load-smoke job runs them
// uninstrumented, where the ceilings are exact.
const raceEnabled = true
