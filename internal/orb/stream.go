package orb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Streaming calls (protocol version 3).
//
// A stream is an id-correlated call whose bodies travel as a chunk
// sequence instead of one buffered frame, so payloads are no longer
// bounded by MaxBody. The wire conversation:
//
//	client                                server
//	  ── kindStreamOpen(id, key, op, budget) ─▶   dispatch StreamHandler
//	  ── kindStreamChunk(id, bytes) … ───────▶    handler reads
//	  ◀─ kindStreamCredit(id, n) ── … ────────    as it consumes
//	  ── kindStreamClose(id, 0) ─────────────▶    request body EOF
//	  ◀─ kindStreamChunk(id, bytes) … ────────    handler writes reply
//	  ── kindStreamCredit(id, n) … ──────────▶    client reads
//	  ◀─ kindStreamClose(id, status) ─────────    call complete
//
// Flow control is credit-based per stream and direction: a sender starts
// with the protocol-fixed initialStreamCredit and may only put that many
// body bytes on the wire until the receiver grants more. Receivers top
// the sender up to their configured Limits.StreamWindow immediately on
// open and re-grant as the consumer drains, so a slow reader exerts
// backpressure all the way to the origin instead of buffering.
//
// Close-frame status: 0 is clean EOF; any other value is the request's
// error-frame code plus one (so codeErrGeneric's zero value stays
// distinguishable from success), with the message in the body. Whole-call
// failures before any reply chunk travel as ordinary kindError frames —
// clients see identical typed errors either way.
//
// Budgets and cancellation reuse the v2 machinery: open frames carry the
// millisecond budget exactly like request frames, handlers get the same
// pooled deadline context, and kindCancel aborts a stream by id.
//
// v1/v2 interop: OpenStream on a connection that did not negotiate v3
// returns a call in buffered fallback — writes accumulate up to MaxBody
// and CloseSend performs an ordinary buffered invoke; payloads past the
// cap fail fast with ErrFrameTooLarge.

// DefaultStreamWindow is the default per-stream, per-direction
// flow-control window (1 MiB).
const DefaultStreamWindow = 1 << 20

// initialStreamCredit is the credit a sender holds the instant a stream
// opens, before any grant arrives — small enough that a receiver with a
// tiny configured window is never flooded, large enough that short
// streams finish without waiting a round trip.
const initialStreamCredit = 64 << 10

// maxStreamChunk bounds the body of one chunk frame. Well under any
// sane MaxBody, so chunk frames pass every peer's frame limit.
const maxStreamChunk = 256 << 10

// ErrStreamProto reports a peer violating stream flow control (chunks
// past the granted credit); the connection is torn down.
var ErrStreamProto = errors.New("orb: stream flow-control violation")

// streamCloseErr reconstructs the typed error a non-zero close status
// carries (status = error-frame code + 1).
func streamCloseErr(op uint32, body []byte) error {
	return errFromFrame(frame{kind: kindError, op: op - 1, body: body})
}

// streamCloseStatus maps a handler error to a close-frame status and
// message, the inverse of streamCloseErr.
func streamCloseStatus(err error) (uint32, []byte) {
	code, body := errFrameCode(err)
	return code + 1, body
}

// chunkQueue is the receive side of one stream direction: delivered
// chunks, credit accounting, and a condition variable for the consumer.
type chunkQueue struct {
	mu   sync.Mutex
	cond sync.Cond

	q        [][]byte
	cur      []byte
	eof      bool  // clean close received
	err      error // terminal failure
	pool     bool  // chunk buffers came from the server body pool
	window   int   // configured receive window
	granted  int   // total credit granted to the peer (incl. initial)
	received int   // total body bytes delivered by the peer
	consumed int   // total body bytes handed to the consumer
	// grant puts a credit frame on the wire; called without mu held.
	grant func(n int)
}

func (cq *chunkQueue) init(window int, pool bool, grant func(n int)) {
	cq.cond.L = &cq.mu
	cq.window = window
	cq.pool = pool
	cq.grant = grant
	cq.granted = initialStreamCredit
}

// topUp grants the peer the configured window beyond the protocol
// initial, called once at stream setup.
func (cq *chunkQueue) topUp() {
	cq.mu.Lock()
	extra := cq.window - cq.granted
	if extra > 0 {
		cq.granted += extra
	}
	cq.mu.Unlock()
	if extra > 0 {
		cq.grant(extra)
	}
}

// deliver enqueues one received chunk. It reports false when the peer
// overran its credit, which the caller must treat as a connection-fatal
// protocol violation.
func (cq *chunkQueue) deliver(body []byte) bool {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.received += len(body)
	if cq.received > cq.granted {
		return false
	}
	if cq.err != nil || cq.eof {
		// Late chunk after terminal state: drop it.
		if cq.pool {
			putBodyBuf(body)
		}
		return true
	}
	cq.q = append(cq.q, body)
	cq.cond.Broadcast()
	return true
}

// closeSend marks clean end of the peer's data.
func (cq *chunkQueue) closeEOF() {
	cq.mu.Lock()
	cq.eof = true
	cq.cond.Broadcast()
	cq.mu.Unlock()
}

// fail terminates the queue; blocked readers return err. Queued chunks
// are released.
func (cq *chunkQueue) fail(err error) {
	cq.mu.Lock()
	if cq.err == nil {
		cq.err = err
	}
	if cq.pool {
		for _, b := range cq.q {
			putBodyBuf(b)
		}
		if cq.cur != nil {
			putBodyBuf(cq.cur)
			cq.cur = nil
		}
	}
	cq.q = nil
	cq.cond.Broadcast()
	cq.mu.Unlock()
}

// read implements io.Reader over the queue, granting credit back to the
// peer as bytes are consumed (batched to a quarter window so credit
// frames stay rare).
func (cq *chunkQueue) read(p []byte) (int, error) {
	cq.mu.Lock()
	for {
		if len(cq.cur) == 0 && len(cq.q) > 0 {
			if cq.cur != nil && cq.pool {
				putBodyBuf(cq.cur)
			}
			cq.cur = cq.q[0]
			cq.q[0] = nil
			cq.q = cq.q[1:]
		}
		if len(cq.cur) > 0 {
			n := copy(p, cq.cur)
			cq.cur = cq.cur[n:]
			cq.consumed += n
			var due int
			if cq.err == nil && cq.granted-cq.consumed < cq.window-cq.window/4 {
				due = cq.window - (cq.granted - cq.consumed)
				cq.granted += due
			}
			cq.mu.Unlock()
			if due > 0 {
				cq.grant(due)
			}
			return n, nil
		}
		if cq.err != nil {
			err := cq.err
			cq.mu.Unlock()
			return 0, err
		}
		if cq.eof {
			cq.mu.Unlock()
			return 0, io.EOF
		}
		cq.cond.Wait()
	}
}

// creditGate is the send side of one stream direction: the sender's
// remaining credit and terminal state.
type creditGate struct {
	mu     sync.Mutex
	cond   sync.Cond
	credit int
	err    error
	sent   bool // at least one chunk reached the wire
	closed bool
}

func (cg *creditGate) init() {
	cg.cond.L = &cg.mu
	cg.credit = initialStreamCredit
}

func (cg *creditGate) add(n int) {
	cg.mu.Lock()
	cg.credit += n
	cg.cond.Broadcast()
	cg.mu.Unlock()
}

func (cg *creditGate) fail(err error) {
	cg.mu.Lock()
	if cg.err == nil {
		cg.err = err
	}
	cg.cond.Broadcast()
	cg.mu.Unlock()
}

// reserve blocks until at least one byte of credit is available and
// returns min(want, credit), claiming it. A zero return means the gate
// failed; the error is returned.
func (cg *creditGate) reserve(want int) (int, error) {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	for {
		if cg.err != nil {
			return 0, cg.err
		}
		if cg.closed {
			return 0, errors.New("orb: write on closed stream")
		}
		if cg.credit > 0 {
			n := want
			if n > cg.credit {
				n = cg.credit
			}
			cg.credit -= n
			cg.sent = true
			return n, nil
		}
		cg.cond.Wait()
	}
}

func (cg *creditGate) anySent() bool {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	return cg.sent
}

// StreamReader is the request-body reader handed to a StreamHandler: an
// io.Reader over the client's chunks that returns io.EOF at the client's
// clean close and a typed error if the stream dies mid-body.
type StreamReader struct {
	cq chunkQueue
}

// Read implements io.Reader.
func (r *StreamReader) Read(p []byte) (int, error) { return r.cq.read(p) }

// StreamWriter is the reply-body writer handed to a StreamHandler:
// chunks go to the client under its flow-control credit.
type StreamWriter struct {
	gate creditGate
	// send puts one chunk frame on the wire; nil-safe after failure.
	send func(b []byte) error
}

// Write implements io.Writer, blocking while the client's credit is
// exhausted.
func (w *StreamWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		want := len(p)
		if want > maxStreamChunk {
			want = maxStreamChunk
		}
		n, err := w.gate.reserve(want)
		if err != nil {
			return total, err
		}
		if err := w.send(p[:n]); err != nil {
			w.gate.fail(err)
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Wrote reports whether any reply chunk reached the wire (used to decide
// between an error frame and a mid-stream close on handler failure).
func (w *StreamWriter) Wrote() bool { return w.gate.anySent() }

// StreamHandler serves one streaming call: read the request body from
// in (io.EOF marks its end), write the reply body to out. A nil return
// closes the reply stream cleanly; an error is delivered to the client
// as a typed error (before any reply chunk) or a mid-stream abort
// (after). ctx carries the propagated budget and is canceled by client
// cancel frames and connection teardown.
type StreamHandler func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error

// CallStream invokes h with panic isolation, like Call.
func CallStream(ctx context.Context, h StreamHandler, op uint32, in *StreamReader, out *StreamWriter) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrServerPanic, r)
		}
	}()
	return h(ctx, op, in, out)
}

// RegisterStream exports a streaming object under a key. A key may carry
// both a buffered Handler and a StreamHandler; buffered requests and
// stream opens dispatch independently.
func (s *Server) RegisterStream(key string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streamHandlers[key] = h
}

// srvStream is one live stream on a server connection.
type srvStream struct {
	id  uint64
	ctx *serverCtx
	rd  *StreamReader
	wr  *StreamWriter
}

// srvStreams tracks the live streams of one server connection.
type srvStreams struct {
	s       *Server
	conn    io.Writer
	writeMu *sync.Mutex
	lim     Limits
	pool    bool

	mu sync.Mutex
	m  map[uint64]*srvStream
}

func (ss *srvStreams) write(f frame) error {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	_, err := writeFrame(ss.conn, f, ss.lim)
	return err
}

func (ss *srvStreams) get(id uint64) *srvStream {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.m[id]
}

func (ss *srvStreams) remove(id uint64) {
	ss.mu.Lock()
	delete(ss.m, id)
	ss.mu.Unlock()
}

// cancel aborts a live stream by id (kindCancel); reports whether the id
// named one.
func (ss *srvStreams) cancel(id uint64) bool {
	st := ss.get(id)
	if st == nil {
		return false
	}
	st.ctx.cancel(context.Canceled)
	st.rd.cq.fail(ErrCanceled)
	st.wr.gate.fail(ErrCanceled)
	return true
}

// failAll tears down every live stream (connection death).
func (ss *srvStreams) failAll(err error) {
	ss.mu.Lock()
	streams := make([]*srvStream, 0, len(ss.m))
	for _, st := range ss.m {
		streams = append(streams, st)
	}
	ss.m = map[uint64]*srvStream{}
	ss.mu.Unlock()
	for _, st := range streams {
		st.ctx.cancel(err)
		st.rd.cq.fail(err)
		st.wr.gate.fail(err)
	}
}

// dispatch runs one stream handler on its own goroutine, mirroring the
// buffered request dispatch: panic isolation, budget-expiry mapping, and
// a typed terminal frame — an error frame if no reply chunk went out, a
// non-zero close status if one did, a clean close on success.
func (ss *srvStreams) dispatch(req frame, sh StreamHandler, reqCtx *serverCtx, reqWG *sync.WaitGroup, inFlight *atomic.Int64) {
	st := &srvStream{id: req.id, ctx: reqCtx, rd: &StreamReader{}, wr: &StreamWriter{}}
	st.rd.cq.init(ss.lim.StreamWindow, ss.pool, func(n int) {
		_ = ss.write(frame{kind: kindStreamCredit, id: req.id, op: uint32(n)})
	})
	st.wr.gate.init()
	st.wr.send = func(b []byte) error {
		return ss.write(frame{kind: kindStreamChunk, id: req.id, body: b})
	}
	ss.mu.Lock()
	ss.m[req.id] = st
	ss.mu.Unlock()
	hadBudget := req.budget > 0
	pool := ss.pool
	inFlight.Add(1)
	reqWG.Add(1)
	go func() {
		defer reqWG.Done()
		defer inFlight.Add(-1)
		defer func() {
			ss.remove(req.id)
			// Release chunk buffers the handler never consumed; chunks
			// arriving after the removal above drop at the map miss.
			st.rd.cq.fail(ErrConnClosed)
			reqCtx.release(pool)
		}()
		// Top the client's send window up from the protocol-fixed
		// initial credit to this endpoint's configured window.
		st.rd.cq.topUp()
		err := CallStream(reqCtx, sh, req.op, st.rd, st.wr)
		if err == nil {
			_ = ss.write(frame{kind: kindStreamClose, id: req.id, op: 0})
			return
		}
		if errors.Is(err, ErrServerPanic) {
			ss.s.panics.Add(1)
		}
		// Same budget-expiry mapping as buffered requests: a handler
		// that bailed because the propagated budget ran out reports
		// ErrExpired, not a generic failure.
		if hadBudget && !errors.Is(err, ErrExpired) &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrDeadline)) &&
			reqCtx.Err() != nil {
			err = fmt.Errorf("%w: handler abandoned at budget expiry: %v", ErrExpired, err)
		}
		if st.wr.Wrote() {
			status, body := streamCloseStatus(err)
			_ = ss.write(frame{kind: kindStreamClose, id: req.id, op: status, body: body})
		} else {
			code, body := errFrameCode(err)
			_ = ss.write(frame{kind: kindError, id: req.id, op: code, body: body})
		}
	}()
}

// handleFrame dispatches one stream-kind frame on a server connection.
// It reports false on a protocol violation that must kill the connection.
func (ss *srvStreams) handleFrame(f frame) bool {
	switch f.kind {
	case kindStreamChunk:
		st := ss.get(f.id)
		if st == nil {
			// Stream already finished (e.g. handler errored); drop.
			if ss.pool {
				putBodyBuf(f.body)
			}
			return true
		}
		return st.rd.cq.deliver(f.body)
	case kindStreamClose:
		st := ss.get(f.id)
		if st != nil {
			if f.op == 0 {
				st.rd.cq.closeEOF()
			} else {
				st.rd.cq.fail(streamCloseErr(f.op, f.body))
			}
		}
		if ss.pool {
			putBodyBuf(f.body)
		}
		return true
	case kindStreamCredit:
		if st := ss.get(f.id); st != nil {
			st.wr.gate.add(int(f.op))
		}
		if ss.pool {
			putBodyBuf(f.body)
		}
		return true
	}
	return true
}

// errStreamClosed is the terminal state of a StreamCall released by its
// owner before the call finished.
var errStreamClosed = errors.New("orb: stream call closed")

// StreamCall is one streaming invocation from the client side: Write the
// request body in any splits, CloseSend to mark its end, Read the reply
// body to io.EOF, then Close. A handler may emit reply chunks while the
// request body is still arriving, so callers moving more than a window's
// worth in both directions must Read concurrently with their Writes —
// writing everything first deadlocks against flow control once the
// unread reply exhausts its credit. On connections that did not negotiate v3
// the call runs in buffered fallback: writes accumulate up to the
// client's MaxBody (past it, writes fail fast wrapping ErrFrameTooLarge)
// and CloseSend performs an ordinary buffered invoke.
type StreamCall struct {
	c   *Client
	ctx context.Context
	id  uint64
	key string
	op  uint32

	recv chunkQueue
	gate creditGate

	fallback  bool
	fbMu      sync.Mutex
	fbBuf     []byte
	fbDone    bool
	closeOnce sync.Once
	finished  chan struct{}
}

// OpenStream starts a streaming call to the object's op. The context
// governs the whole call: its budget travels in the open frame, and its
// cancellation aborts the stream (a cancel frame stops the server). The
// caller must Close the returned call.
func (c *Client) OpenStream(ctx context.Context, key string, op uint32) (*StreamCall, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	vctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		// Bound the negotiation wait: a v1 server never sends a hello.
		var cancel context.CancelFunc
		vctx, cancel = context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
	}
	ver := c.AwaitVersion(vctx)
	sc := &StreamCall{c: c, ctx: ctx, key: key, op: op, finished: make(chan struct{})}
	if ver < 3 {
		sc.fallback = true
		sc.recv.init(c.lim.StreamWindow, false, func(int) {})
		return sc, nil
	}
	sc.gate.init()
	sc.recv.init(c.lim.StreamWindow, false, func(n int) {
		_ = c.write(context.Background(), frame{kind: kindStreamCredit, id: sc.id, op: uint32(n)})
	})
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	sc.id = c.nextID
	c.streams[sc.id] = sc
	c.mu.Unlock()
	fr := frame{kind: kindStreamOpen, ver: 3, id: sc.id, key: key, op: op, budget: budgetMillis(ctx)}
	if err := c.write(ctx, fr); err != nil {
		c.removeStream(sc.id)
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				err := ctxErr(ctx.Err())
				sc.gate.fail(err)
				sc.recv.fail(err)
				go c.sendCancel(sc.id)
			case <-sc.finished:
			}
		}()
	}
	// Grant the server's reply direction this client's full window.
	sc.recv.topUp()
	return sc, nil
}

func (c *Client) removeStream(id uint64) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}

// onFrame routes one stream-correlated frame from the read loop.
func (sc *StreamCall) onFrame(f frame) {
	switch f.kind {
	case kindStreamChunk:
		if !sc.recv.deliver(f.body) {
			err := ErrStreamProto
			sc.gate.fail(err)
			sc.recv.fail(err)
		}
	case kindStreamClose:
		if f.op == 0 {
			sc.recv.closeEOF()
		} else {
			err := streamCloseErr(f.op, f.body)
			sc.recv.fail(err)
			sc.gate.fail(err)
		}
	case kindStreamCredit:
		sc.gate.add(int(f.op))
	case kindError:
		err := errFromFrame(f)
		sc.gate.fail(err)
		sc.recv.fail(err)
	case kindReply:
		// Defensive: a reply frame for a stream id is treated as the
		// whole reply body.
		sc.recv.deliverRaw(f.body)
		sc.recv.closeEOF()
	}
}

// connFail terminates the call when its connection dies.
func (sc *StreamCall) connFail(err error) {
	sc.gate.fail(err)
	sc.recv.fail(err)
}

// Write sends the next split of the request body, blocking while the
// server's flow-control credit is exhausted. It fails fast once the
// server answered with an error.
func (sc *StreamCall) Write(p []byte) (int, error) {
	if sc.fallback {
		sc.fbMu.Lock()
		defer sc.fbMu.Unlock()
		if sc.fbDone {
			return 0, errors.New("orb: write on closed stream")
		}
		if len(sc.fbBuf)+len(p) > sc.c.lim.MaxBody {
			return 0, fmt.Errorf("%w: stream of %d bytes exceeds buffered fallback cap %d (peer speaks protocol < 3)",
				ErrFrameTooLarge, len(sc.fbBuf)+len(p), sc.c.lim.MaxBody)
		}
		sc.fbBuf = append(sc.fbBuf, p...)
		return len(p), nil
	}
	total := 0
	for len(p) > 0 {
		want := len(p)
		if want > maxStreamChunk {
			want = maxStreamChunk
		}
		n, err := sc.gate.reserve(want)
		if err != nil {
			return total, err
		}
		if err := sc.c.write(sc.ctx, frame{kind: kindStreamChunk, id: sc.id, body: p[:n]}); err != nil {
			sc.gate.fail(err)
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// CloseSend marks the end of the request body. In buffered fallback this
// is where the whole call executes; its error is also surfaced to Read.
func (sc *StreamCall) CloseSend() error {
	if sc.fallback {
		sc.fbMu.Lock()
		if sc.fbDone {
			sc.fbMu.Unlock()
			return nil
		}
		sc.fbDone = true
		body := sc.fbBuf
		sc.fbMu.Unlock()
		reply, err := sc.c.InvokeContext(sc.ctx, sc.key, sc.op, body)
		if err != nil {
			sc.recv.fail(err)
			return err
		}
		sc.recv.deliverRaw(reply)
		sc.recv.closeEOF()
		return nil
	}
	if !sc.gate.close() {
		return nil
	}
	return sc.c.write(sc.ctx, frame{kind: kindStreamClose, id: sc.id, op: 0})
}

// Read returns the next reply-body bytes, io.EOF at the server's clean
// close, or the call's typed error.
func (sc *StreamCall) Read(p []byte) (int, error) { return sc.recv.read(p) }

// Finished reports whether the call reached a terminal state (clean
// reply EOF or a failure).
func (sc *StreamCall) Finished() bool {
	sc.recv.mu.Lock()
	defer sc.recv.mu.Unlock()
	return sc.recv.err != nil || sc.recv.eof
}

// Close releases the call. If the call has not finished, the server is
// sent a best-effort cancel and local waiters fail with a typed error.
func (sc *StreamCall) Close() error {
	sc.closeOnce.Do(func() {
		close(sc.finished)
		if sc.fallback {
			sc.fbMu.Lock()
			sc.fbDone = true
			sc.fbMu.Unlock()
			return
		}
		done := sc.Finished()
		sc.c.removeStream(sc.id)
		sc.gate.fail(errStreamClosed)
		if !done {
			sc.recv.fail(errStreamClosed)
			go sc.c.sendCancel(sc.id)
		}
	})
	return nil
}

// deliverRaw enqueues a chunk outside flow-control accounting (buffered
// fallback replies, defensive reply frames).
func (cq *chunkQueue) deliverRaw(b []byte) {
	cq.mu.Lock()
	if cq.err == nil && !cq.eof {
		cq.q = append(cq.q, b)
		cq.cond.Broadcast()
	}
	cq.mu.Unlock()
}

// close marks the send side done; reports false if already closed or
// failed (no close frame should go out).
func (cg *creditGate) close() bool {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	if cg.closed || cg.err != nil {
		return false
	}
	cg.closed = true
	return true
}
