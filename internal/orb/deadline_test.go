package orb

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// awaitV2 blocks until the client has seen the server's hello, failing
// the test if negotiation does not settle on at least version 2 (the
// budget machinery these tests exercise).
func awaitV2(t *testing.T, c *Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if v := c.AwaitVersion(ctx); v < 2 {
		t.Fatalf("negotiated version %d, want >= 2", v)
	}
}

// Both endpoints at the build maximum: the hello upgrades the client to
// v2 and a context deadline travels as a wire budget the handler can see
// as its own context deadline.
func TestNegotiationV2BudgetReachesHandler(t *testing.T) {
	s := startServer(t)
	deadlines := make(chan time.Duration, 1)
	s.Register("probe", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		d, ok := ctx.Deadline()
		if !ok {
			deadlines <- 0
		} else {
			deadlines <- time.Until(d)
		}
		return body, nil
	})
	c := dial(t, s)
	awaitV2(t, c)

	ctx, cancel := context.WithTimeout(context.Background(), 750*time.Millisecond)
	defer cancel()
	if _, err := c.InvokeContext(ctx, "probe", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	rem := <-deadlines
	if rem <= 0 || rem > 750*time.Millisecond {
		t.Errorf("handler saw %v of budget, want (0, 750ms]", rem)
	}
}

// A v1-pinned server against a default client: no hello ever arrives, so
// the client stays on v1 frames, calls succeed, and the budget is simply
// absent — the handler's context carries no deadline even though the
// caller's does.
func TestNegotiationV1ServerInterop(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxProtoVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	hasDeadline := make(chan bool, 1)
	s.Register("probe", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		_, ok := ctx.Deadline()
		hasDeadline <- ok
		return body, nil
	})
	c := dial(t, s)

	// No hello ever arrives from a v1 server, so the bounded wait itself
	// is the negotiation outcome.
	wctx, wcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer wcancel()
	if v := c.AwaitVersion(wctx); v != 1 {
		t.Fatalf("negotiated version %d against a v1 server, want 1", v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	reply, err := c.InvokeContext(ctx, "probe", 3, []byte("v1 wire"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, []byte("v1 wire")) {
		t.Errorf("reply = %q", reply)
	}
	if <-hasDeadline {
		t.Error("handler saw a deadline on a v1 connection; budgets must be absent")
	}
}

// A v1-pinned client against a v2 server: the hello is parsed and
// discarded without upgrading, requests stay v1-framed, and interop is
// clean in this direction too.
func TestNegotiationV1ClientInterop(t *testing.T) {
	s := startServer(t)
	hasDeadline := make(chan bool, 1)
	s.Register("probe", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		_, ok := ctx.Deadline()
		hasDeadline <- ok
		return body, nil
	})
	c, err := Dial(s.Addr(), WithMaxProtoVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.AwaitVersion(ctx)
	if v := c.ProtoVersion(); v != 1 {
		t.Fatalf("v1-pinned client negotiated version %d, want 1", v)
	}
	reply, err := c.InvokeContext(ctx, "probe", 0, []byte("pinned"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, []byte("pinned")) {
		t.Errorf("reply = %q", reply)
	}
	if <-hasDeadline {
		t.Error("handler saw a deadline from a v1-pinned client")
	}
}

// Abandoning a call sends a cancel frame: the server aborts exactly that
// request (the handler's context fires) and counts it.
func TestCancelFrameAbortsHandler(t *testing.T) {
	s := startServer(t)
	started := make(chan struct{})
	aborted := make(chan error, 1)
	s.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		close(started)
		select {
		case <-ctx.Done():
			aborted <- ctx.Err()
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("handler never saw the cancellation")
		}
	})
	c := dial(t, s)
	awaitV2(t, c)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.InvokeContext(ctx, "slow", 0, nil)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, ErrCanceled) {
		t.Fatalf("client error = %v, want ErrCanceled", err)
	}
	select {
	case err := <-aborted:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("handler context error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never observed the cancel frame")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server Canceled = %d, want ≥ 1", s.Stats().Canceled)
		}
		time.Sleep(time.Millisecond)
	}
}

// A request whose body trickles in past its own budget is shed before
// dispatch: the handler never runs, the Expired counter proves it, and
// the error frame carries the typed expiry code.
func TestExpiredShedBeforeDispatch(t *testing.T) {
	s := startServer(t)
	ran := make(chan struct{}, 1)
	s.Register("work", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		ran <- struct{}{}
		return nil, nil
	})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	lim := Limits{}.withDefaults()
	// Consume the server's hello first.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	hello, err := readFrame(conn, lim)
	if err != nil || hello.kind != kindHello {
		t.Fatalf("hello = %+v, %v", hello, err)
	}

	// Encode a v2 request with a 20ms budget, then deliver it torn: the
	// fixed header (which anchors the budget clock) immediately, the rest
	// only after the budget is long spent.
	var buf bytes.Buffer
	req := frame{ver: 2, kind: kindRequest, id: 1, key: "work", op: 0, budget: 20}
	if _, err := writeFrame(&buf, req, lim); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	const headLen = 18 + 4 // fixed head + budget field
	if _, err := conn.Write(raw[:headLen]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := conn.Write(raw[headLen:]); err != nil {
		t.Fatal(err)
	}

	reply, err := readFrame(conn, lim)
	if err != nil {
		t.Fatal(err)
	}
	if reply.kind != kindError || reply.op != codeErrExpired {
		t.Fatalf("reply kind=%d op=%d, want expired error frame", reply.kind, reply.op)
	}
	if !errors.Is(errFromFrame(reply), ErrExpired) {
		t.Errorf("decoded error = %v, want ErrExpired", errFromFrame(reply))
	}
	if got := s.Stats().Expired; got != 1 {
		t.Errorf("server Expired = %d, want 1", got)
	}
	select {
	case <-ran:
		t.Fatal("handler ran for a request that was already expired")
	default:
	}
}

// A handler that gives up when the budget-derived deadline fires
// surfaces to the caller as the typed expiry, not a generic remote
// error: the service was healthy, the caller's clock ran out.
func TestExpiredMidHandler(t *testing.T) {
	s := startServer(t)
	s.Register("sleepy", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("budget deadline never fired")
		}
	})
	c := dial(t, s)
	awaitV2(t, c)

	// Explicit wire budget, no local deadline: the client is willing to
	// wait for the server's verdict, so the typed expiry must come from
	// the server, proving the budget → handler-context derivation.
	ctx := ContextWithBudget(context.Background(), 50*time.Millisecond)
	_, err := c.InvokeContext(ctx, "sleepy", 0, nil)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

// An explicit ContextWithBudget value overrides the context's own
// deadline as the wire budget, which is how `mbird remote -budget` gives
// downstream hops less time than it waits locally.
func TestExplicitBudgetOverridesDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if ms := budgetMillis(ctx); ms < 59*60*1000 {
		t.Fatalf("deadline-derived budget = %dms", ms)
	}
	ctx = ContextWithBudget(ctx, 250*time.Millisecond)
	if ms := budgetMillis(ctx); ms != 250 {
		t.Fatalf("explicit budget = %dms, want 250", ms)
	}
}
