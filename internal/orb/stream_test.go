package orb

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// streamEcho is a stream handler that copies the request body to the
// reply body chunk by chunk.
func streamEcho(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
	buf := make([]byte, 32<<10)
	for {
		n, err := in.Read(buf)
		if n > 0 {
			if _, werr := out.Write(buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// patterned returns n bytes whose content encodes position, so any
// reorder or loss breaks the comparison.
func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

// streamAll writes body in split-sized chunks while concurrently
// draining the reply (a handler may start replying before the request
// ends — see the StreamCall doc). The write-leg error wins when the
// read leg failed collaterally.
func streamAll(t *testing.T, sc *StreamCall, body []byte, split int) ([]byte, error) {
	t.Helper()
	werr := make(chan error, 1)
	go func() {
		for off := 0; off < len(body); off += split {
			end := off + split
			if end > len(body) {
				end = len(body)
			}
			if _, err := sc.Write(body[off:end]); err != nil {
				werr <- err
				return
			}
		}
		werr <- sc.CloseSend()
	}()
	got, rerr := io.ReadAll(sc)
	if we := <-werr; we != nil && rerr != nil {
		return got, we
	} else if we != nil {
		return got, we
	}
	return got, rerr
}

func TestStreamRoundTrip(t *testing.T) {
	s := startServer(t)
	s.RegisterStream("echo", streamEcho)
	c := dial(t, s)

	// 2 MiB crosses the initial credit and the stream window several
	// times, so the transfer only completes if credit grants flow.
	body := patterned(2 << 20)
	sc, err := c.OpenStream(context.Background(), "echo", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got, err := streamAll(t, sc, body, 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("echo mismatch: %d bytes back, want %d", len(got), len(body))
	}
	if !sc.Finished() {
		t.Error("call must report finished after clean EOF")
	}
}

func TestStreamEmptyBody(t *testing.T) {
	s := startServer(t)
	s.RegisterStream("echo", streamEcho)
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got, err := streamAll(t, sc, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes for empty body", len(got))
	}
}

func TestStreamNoSuchObject(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "nope", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	_ = sc.CloseSend()
	_, err = io.ReadAll(sc)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "no stream object") {
		t.Fatalf("got %v, want remote no-stream-object error", err)
	}
}

func TestStreamHandlerErrorBeforeReply(t *testing.T) {
	s := startServer(t)
	s.RegisterStream("fail", func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
		if _, err := io.Copy(io.Discard, in); err != nil {
			return err
		}
		return errors.New("declined after reading")
	})
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "fail", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	_, err = streamAll(t, sc, patterned(1000), 100)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "declined after reading") {
		t.Fatalf("got %v, want RemoteError with handler message", err)
	}
	// Writes after the failure fail fast rather than hanging on credit.
	if _, err := sc.Write([]byte("late")); err == nil {
		t.Error("write after terminal error must fail")
	}
}

func TestStreamMidReplyAbort(t *testing.T) {
	s := startServer(t)
	s.RegisterStream("abort", func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
		if _, err := io.Copy(io.Discard, in); err != nil {
			return err
		}
		if _, err := out.Write(patterned(100)); err != nil {
			return err
		}
		return errors.New("died mid-reply")
	})
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "abort", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got, err := streamAll(t, sc, []byte("x"), 1)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "died mid-reply") {
		t.Fatalf("got %v, want mid-stream abort as RemoteError", err)
	}
	if len(got) > 100 {
		t.Fatalf("read %d bytes past the abort point", len(got))
	}
}

func TestStreamCreditBackpressure(t *testing.T) {
	// The server grants only its configured window; a handler that is
	// not reading must stall the client's writes at the initial credit.
	s, err := NewServer("127.0.0.1:0", func(l *Limits) { l.StreamWindow = 1 << 10 })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	release := make(chan struct{})
	s.RegisterStream("slow", func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
		<-release
		return streamEcho(ctx, op, in, out)
	})
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "slow", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	body := patterned(256 << 10) // 4x the initial credit
	done := make(chan error, 1)
	go func() {
		_, err := streamAll(t, sc, body, 16<<10)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("writer finished (err=%v) while the handler was not reading: no flow control", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestStreamCancelReachesHandler(t *testing.T) {
	s := startServer(t)
	handlerErr := make(chan error, 1)
	s.RegisterStream("hang", func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
		_, err := io.Copy(io.Discard, in) // blocks until the stream dies
		handlerErr <- err
		return err
	})
	c := dial(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	sc, err := c.OpenStream(ctx, "hang", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Write(patterned(100)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := io.ReadAll(sc); !errors.Is(err, ErrCanceled) {
		t.Fatalf("client read: got %v, want ErrCanceled", err)
	}
	select {
	case err := <-handlerErr:
		if err == nil || err == io.EOF {
			t.Fatalf("handler read ended with %v, want a cancellation error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never observed the cancel")
	}
}

func TestStreamConnDeathMidStream(t *testing.T) {
	s := startServer(t)
	handlerErr := make(chan error, 1)
	s.RegisterStream("hang", func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
		_, err := io.Copy(io.Discard, in)
		handlerErr <- err
		return err
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := c.OpenStream(context.Background(), "hang", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Write(patterned(2048)); err != nil {
		t.Fatal(err)
	}
	_ = c.Close() // connection dies with the stream open

	if _, err := io.ReadAll(sc); err == nil {
		t.Fatal("read must fail after connection death")
	}
	if _, err := sc.Write([]byte("more")); err == nil {
		t.Fatal("write must fail after connection death")
	}
	_ = sc.Close()
	select {
	case err := <-handlerErr:
		if err == nil || err == io.EOF {
			t.Fatalf("handler read ended with %v, want a connection error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never observed the connection death")
	}
}

func TestStreamBudgetPropagates(t *testing.T) {
	s := startServer(t)
	gotDeadline := make(chan bool, 1)
	s.RegisterStream("b", func(ctx context.Context, op uint32, in *StreamReader, out *StreamWriter) error {
		_, ok := ctx.Deadline()
		gotDeadline <- ok
		return streamEcho(ctx, op, in, out)
	})
	c := dial(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sc, err := c.OpenStream(ctx, "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := streamAll(t, sc, []byte("hi"), 2); err != nil {
		t.Fatal(err)
	}
	if !<-gotDeadline {
		t.Error("open-frame budget did not become a handler deadline")
	}
}

func TestStreamV1BufferedFallback(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxProtoVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	var gotLen atomic.Int64
	s.Register("sum", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		gotLen.Store(int64(len(body)))
		return []byte("ok"), nil
	})
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "sum", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	body := patterned(100 << 10)
	got, err := streamAll(t, sc, body, 7<<10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" || gotLen.Load() != int64(len(body)) {
		t.Fatalf("fallback invoke saw %d bytes, reply %q", gotLen.Load(), got)
	}
}

func TestStreamV1FallbackOverCap(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxProtoVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("sum", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return nil, nil
	})
	c, err := Dial(s.Addr(), WithMaxBody(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	sc, err := c.OpenStream(context.Background(), "sum", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	// The cap error is synchronous: it must surface on the Write that
	// crosses the client's MaxBody, before any invoke happens.
	body := patterned(8 << 10)
	var werr error
	for off := 0; off < len(body) && werr == nil; off += 1 << 10 {
		_, werr = sc.Write(body[off : off+1<<10])
	}
	if !errors.Is(werr, ErrFrameTooLarge) {
		t.Fatalf("got %v, want fast-fail wrapping ErrFrameTooLarge", werr)
	}
}

func TestStreamUnregisterDropsHandler(t *testing.T) {
	s := startServer(t)
	s.RegisterStream("gone", streamEcho)
	s.Unregister("gone")
	c := dial(t, s)
	sc, err := c.OpenStream(context.Background(), "gone", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	_ = sc.CloseSend()
	if _, err := io.ReadAll(sc); err == nil {
		t.Fatal("unregistered stream object must not serve")
	}
}

func TestStreamConcurrentCalls(t *testing.T) {
	s := startServer(t)
	s.RegisterStream("echo", streamEcho)
	c := dial(t, s)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			body := patterned(100<<10 + i*1013)
			sc, err := c.OpenStream(context.Background(), "echo", uint32(i))
			if err != nil {
				errs <- err
				return
			}
			defer sc.Close()
			got, err := streamAll(t, sc, body, 9<<10)
			if err == nil && !bytes.Equal(got, body) {
				err = errors.New("echo mismatch")
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
