package orb

import (
	"bytes"
	"context"
	"fmt"
	"repro/internal/testutil"
	"sync"
	"testing"
)

// TestRoundTripAllocs pins the allocation ceiling of one echo round trip
// on a pooled-buffer server: request frame written from a pooled buffer,
// request body read into a pooled buffer, reply written and the body
// recycled. The remaining allocations are the client-side reply body
// (clients don't pool — callers keep replies) and the server's dispatch
// goroutine. A regression here means a pool stopped being hit.
func TestRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	s, err := NewServer("127.0.0.1:0", WithBufPooling())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return body, nil
	})
	c := dial(t, s)
	payload := []byte("steady-state payload")
	// Warm the pools and the connection before measuring.
	for i := 0; i < 50; i++ {
		if _, err := c.Invoke("echo", 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := c.Invoke("echo", 1, payload); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 5
	if avg > ceiling {
		t.Fatalf("round trip allocates %.1f/op, ceiling %d", avg, ceiling)
	}
}

// TestConcurrentScratchIntegrity floods one connection with concurrent
// requests carrying distinct payloads and checks every echo comes back
// intact. It guards the per-connection read scratch and the pooled body
// buffers: a buffer recycled while a handler (or a reply write) still
// held it would surface here as a cross-request payload swap.
func TestConcurrentScratchIntegrity(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithBufPooling())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		// Copy into a fresh reply so the server's reply write and the
		// pooled request body are distinct buffers, maximizing reuse
		// pressure on the pool while the contract (no retention past
		// return) still holds.
		return append([]byte(nil), body...), nil
	})
	c := dial(t, s)
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				want := []byte(fmt.Sprintf("worker-%02d-req-%04d-%s", w, i,
					bytes.Repeat([]byte{byte('a' + w)}, 64)))
				got, err := c.Invoke("echo", uint32(i), want)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d call %d: reply corrupted: got %q want %q", w, i, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
