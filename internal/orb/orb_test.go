package orb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRequestReply(t *testing.T) {
	s := startServer(t)
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		out := append([]byte{byte(op)}, body...)
		return out, nil
	})
	c := dial(t, s)
	reply, err := c.Invoke("echo", 7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, append([]byte{7}, "hello"...)) {
		t.Errorf("reply = %q", reply)
	}
}

func TestRemoteError(t *testing.T) {
	s := startServer(t)
	s.Register("bad", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	c := dial(t, s)
	_, err := c.Invoke("bad", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kaboom" {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownObject(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	_, err := c.Invoke("ghost", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	s.Register("sq", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		n := int(body[0])
		return []byte{byte(n * n % 251)}, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := dial(t, s)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reply, err := c.Invoke("sq", 0, []byte{byte(i)})
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if reply[0] != byte(i*i%251) {
					t.Errorf("sq(%d) = %d", i, reply[0])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestPipelinedRequestsOneConnection(t *testing.T) {
	s := startServer(t)
	s.Register("id", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return body, nil
	})
	c := dial(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			reply, err := c.Invoke("id", uint32(i), body)
			if err != nil {
				t.Errorf("invoke %d: %v", i, err)
				return
			}
			if !bytes.Equal(reply, body) {
				t.Errorf("reply %d = %q", i, reply)
			}
		}(i)
	}
	wg.Wait()
}

func TestOneway(t *testing.T) {
	s := startServer(t)
	var count atomic.Int32
	received := make(chan struct{}, 16)
	s.Register("sink", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		count.Add(1)
		received <- struct{}{}
		return nil, nil
	})
	c := dial(t, s)
	for i := 0; i < 5; i++ {
		if err := c.Send("sink", 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-received:
		case <-time.After(5 * time.Second):
			t.Fatalf("one-way message %d never arrived", i)
		}
	}
	if count.Load() != 5 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestInvokeAfterServerClose(t *testing.T) {
	s := startServer(t)
	s.Register("x", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return nil, nil })
	c := dial(t, s)
	if _, err := c.Invoke("x", 0, nil); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := c.Invoke("x", 0, nil); err == nil {
		t.Error("invoke after server close succeeded")
	}
}

func TestLargeBody(t *testing.T) {
	s := startServer(t)
	s.Register("len", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return []byte{byte(len(body) >> 16)}, nil
	})
	c := dial(t, s)
	body := make([]byte, 1<<20)
	reply, err := c.Invoke("len", 0, body)
	if err != nil {
		t.Fatal(err)
	}
	if reply[0] != byte(len(body)>>16) {
		t.Errorf("reply = %d", reply[0])
	}
}

func TestRegisterReplaces(t *testing.T) {
	s := startServer(t)
	s.Register("v", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return []byte{1}, nil })
	s.Register("v", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return []byte{2}, nil })
	c := dial(t, s)
	reply, err := c.Invoke("v", 0, nil)
	if err != nil || reply[0] != 2 {
		t.Errorf("reply = %v, %v", reply, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{kind: kindRequest, id: 42, key: "obj/1", op: 3, body: []byte("payload")}
	if _, err := writeFrame(&buf, in, Limits{}.withDefaults()); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf, Limits{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if out.kind != in.kind || out.id != in.id || out.key != in.key || out.op != in.op || !bytes.Equal(out.body, in.body) {
		t.Errorf("frame = %+v", out)
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("XXXX")
	buf.Write(make([]byte, 32))
	if _, err := readFrame(&buf, Limits{}.withDefaults()); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	// Oversized body rejected at write time.
	big := frame{kind: kindRequest, body: make([]byte, DefaultMaxBody+1)}
	if _, err := writeFrame(&buf, big, Limits{}.withDefaults()); err == nil {
		t.Error("oversized body accepted by writeFrame")
	}
	// Oversized key rejected at read time.
	buf.Reset()
	buf.WriteString(magic)
	buf.WriteByte(1)
	buf.WriteByte(kindRequest)
	buf.Write(make([]byte, 8))                // id
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // keyLen = huge
	if _, err := readFrame(&buf, Limits{}.withDefaults()); err == nil {
		t.Error("oversized key accepted by readFrame")
	}
	// Unsupported version rejected.
	buf.Reset()
	buf.WriteString(magic)
	buf.WriteByte(9)
	buf.Write(make([]byte, 40))
	if _, err := readFrame(&buf, Limits{}.withDefaults()); err == nil {
		t.Error("unsupported version accepted")
	}
}

// --- configurable frame limits (write and read side) ---

func TestWriteSideFrameLimits(t *testing.T) {
	s := startServer(t)
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })
	c, err := Dial(s.Addr(), WithMaxBody(64), WithMaxKey(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	if _, err := c.Invoke("echo", 0, make([]byte, 65)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized body error = %v, want ErrFrameTooLarge", err)
	}
	if _, err := c.Invoke("123456789", 0, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized key error = %v, want ErrFrameTooLarge", err)
	}
	if err := c.Send("123456789", 0, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized oneway key error = %v, want ErrFrameTooLarge", err)
	}
	// The rejection happens before any bytes hit the wire, so the
	// connection stays usable.
	reply, err := c.Invoke("echo", 0, make([]byte, 64))
	if err != nil || len(reply) != 64 {
		t.Fatalf("in-limit invoke after rejection: len=%d err=%v", len(reply), err)
	}
}

func TestReadSideFrameLimitServer(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxBody(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })

	c := dialAddr(t, s.Addr())
	// The client happily writes 1 KiB; the server's read side must refuse
	// it and drop the connection.
	_, err = c.Invoke("echo", 0, make([]byte, 1024))
	if err == nil {
		t.Fatal("oversized request was served")
	}
	// A fresh connection with a conforming request still works.
	c2 := dialAddr(t, s.Addr())
	if _, err := c2.Invoke("echo", 0, make([]byte, 64)); err != nil {
		t.Fatalf("in-limit request on fresh connection: %v", err)
	}
}

func TestReadSideFrameLimitClient(t *testing.T) {
	s := startServer(t)
	s.Register("blow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return make([]byte, 1024), nil
	})
	c, err := Dial(s.Addr(), WithMaxBody(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	_, err = c.Invoke("blow", 0, nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized reply error = %v, want ErrFrameTooLarge", err)
	}
}

func dialAddr(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// --- per-request dispatch: no head-of-line blocking ---

// A slow handler must not delay a fast handler's reply on the same
// connection: serveConn dispatches each request frame in its own
// goroutine.
func TestNoHeadOfLineBlocking(t *testing.T) {
	s := startServer(t)
	slowRelease := make(chan struct{})
	s.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		<-slowRelease
		return []byte("slow"), nil
	})
	s.Register("fast", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return []byte("fast"), nil
	})
	c := dial(t, s)

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", 0, nil)
		slowDone <- err
	}()

	// The fast request is written after the slow one is in flight, on the
	// same connection, and must complete while slow is still blocked.
	deadline := time.After(5 * time.Second)
	fastDone := make(chan error, 1)
	go func() {
		reply, err := c.Invoke("fast", 0, nil)
		if err == nil && string(reply) != "fast" {
			err = fmt.Errorf("reply %q", reply)
		}
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast invoke: %v", err)
		}
	case <-deadline:
		t.Fatal("fast request blocked behind slow handler")
	}

	close(slowRelease)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow invoke: %v", err)
	}
}

// --- context deadlines and cancellation ---

func TestInvokeContextDeadline(t *testing.T) {
	s := startServer(t)
	release := make(chan struct{})
	s.Register("stall", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		<-release
		return []byte("late"), nil
	})
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })
	c := dial(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.InvokeContext(ctx, "stall", 0, nil)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Errorf("%d pending entries after abandoned call", n)
	}
	// The connection stays usable, and the abandoned call's late reply is
	// discarded rather than misdelivered.
	close(release)
	reply, err := c.Invoke("echo", 0, []byte("still alive"))
	if err != nil || string(reply) != "still alive" {
		t.Fatalf("invoke after deadline = %q, %v", reply, err)
	}
}

func TestInvokeContextCancel(t *testing.T) {
	s := startServer(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s.Register("stall", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	c := dial(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := c.InvokeContext(ctx, "stall", 0, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// A context that is dead on arrival never touches the wire.
	if _, err := c.InvokeContext(ctx, "stall", 0, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled err = %v, want ErrCanceled", err)
	}
}

// --- connection death with calls in flight ---

// When the connection dies mid-call, every in-flight Invoke must fail
// promptly with the typed connection error and the pending-call map must
// come back empty — no leaked entries, no caller blocked forever.
func TestConnectionDeathFailsInFlightCalls(t *testing.T) {
	s := startServer(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s.Register("stall", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	c := dial(t, s)

	const inflight = 8
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := c.Invoke("stall", 0, nil)
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n == inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls in flight", n, inflight)
		}
		time.Sleep(time.Millisecond)
	}

	// The transport dies under the client (not a graceful Close).
	_ = c.conn.Close()
	for i := 0; i < inflight; i++ {
		if err := <-errs; !errors.Is(err, ErrConnClosed) {
			t.Errorf("in-flight err = %v, want ErrConnClosed", err)
		}
	}
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Errorf("%d pending entries leaked after connection death", n)
	}
	// Later calls fail fast with the recorded terminal error.
	if _, err := c.Invoke("stall", 0, nil); !errors.Is(err, ErrConnClosed) {
		t.Errorf("post-death err = %v, want ErrConnClosed", err)
	}
}

// --- read-side key limits ---

func TestReadSideKeyLimit(t *testing.T) {
	cases := []struct {
		name    string
		keyLen  int
		maxKey  int
		wantErr bool
	}{
		{"at-limit", 8, 8, false},
		{"over-limit", 9, 8, true},
		{"default-at-limit", DefaultMaxKey, 0, false},
		{"default-over-limit", DefaultMaxKey + 1, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key := strings.Repeat("k", tc.keyLen)
			var buf bytes.Buffer
			// A permissive writer produces the frame; the limits under
			// test apply on the read side only.
			wlim := Limits{MaxKey: tc.keyLen, MaxBody: DefaultMaxBody}
			if _, err := writeFrame(&buf, frame{kind: kindRequest, id: 1, key: key}, wlim); err != nil {
				t.Fatal(err)
			}
			f, err := readFrame(&buf, Limits{MaxKey: tc.maxKey}.withDefaults())
			if tc.wantErr {
				if !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("err = %v, want ErrFrameTooLarge", err)
				}
				return
			}
			if err != nil || f.key != key {
				t.Fatalf("readFrame = %q, %v", f.key, err)
			}
		})
	}
}

func TestReadSideKeyLimitServer(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxKey(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("12345678", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })

	// The client's default limits allow the long key; the server's read
	// side must refuse it and drop the connection.
	c := dialAddr(t, s.Addr())
	if _, err := c.Invoke("123456789", 0, nil); err == nil {
		t.Fatal("oversized key was served")
	}
	c2 := dialAddr(t, s.Addr())
	if _, err := c2.Invoke("12345678", 0, []byte("x")); err != nil {
		t.Fatalf("in-limit key on fresh connection: %v", err)
	}
}

// --- reply after close ---

// A handler that finishes after its client has gone must not wedge or
// crash the server: the reply write fails quietly and other connections
// keep working.
func TestReplyAfterClientClose(t *testing.T) {
	s := startServer(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Register("stall", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		close(entered)
		<-release
		return []byte("too late"), nil
	})
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })

	c := dial(t, s)
	go func() { _, _ = c.Invoke("stall", 0, nil) }()
	<-entered
	_ = c.Close()
	close(release) // the reply now goes to a dead connection

	// The server keeps serving other clients.
	c2 := dial(t, s)
	reply, err := c2.Invoke("echo", 0, []byte("ok"))
	if err != nil || string(reply) != "ok" {
		t.Fatalf("invoke after orphaned reply = %q, %v", reply, err)
	}
}

// --- graceful shutdown ---

func TestShutdownDrainsInFlight(t *testing.T) {
	s := startServer(t)
	s.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		time.Sleep(150 * time.Millisecond)
		return []byte("drained"), nil
	})
	c := dial(t, s)

	got := make(chan struct{})
	var reply []byte
	var invokeErr error
	go func() {
		reply, invokeErr = c.Invoke("slow", 0, nil)
		close(got)
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the server

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-got
	if invokeErr != nil || string(reply) != "drained" {
		t.Fatalf("in-flight call across drain = %q, %v", reply, invokeErr)
	}
	// The drained server accepts no new work.
	if c2, err := Dial(s.Addr()); err == nil {
		t.Cleanup(func() { _ = c2.Close() })
		if _, err := c2.Invoke("slow", 0, nil); err == nil {
			t.Error("invoke on a drained server succeeded")
		}
	}
}

func TestShutdownForceClosesOnContextExpiry(t *testing.T) {
	s := startServer(t)
	s.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		time.Sleep(500 * time.Millisecond)
		return []byte("too slow"), nil
	})
	c := dial(t, s)

	errs := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", 0, nil)
		errs <- err
	}()
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = s.Shutdown(ctx)
	// The client sees its connection force-closed near the drain deadline,
	// well before the handler would have finished.
	select {
	case err := <-errs:
		if !errors.Is(err, ErrConnClosed) {
			t.Errorf("force-closed call err = %v, want ErrConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("force-closed call never returned")
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Errorf("Shutdown returned in %v, want it to wait for the handler goroutine", elapsed)
	}
}
