package orb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRequestReply(t *testing.T) {
	s := startServer(t)
	s.Register("echo", func(op uint32, body []byte) ([]byte, error) {
		out := append([]byte{byte(op)}, body...)
		return out, nil
	})
	c := dial(t, s)
	reply, err := c.Invoke("echo", 7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, append([]byte{7}, "hello"...)) {
		t.Errorf("reply = %q", reply)
	}
}

func TestRemoteError(t *testing.T) {
	s := startServer(t)
	s.Register("bad", func(op uint32, body []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	c := dial(t, s)
	_, err := c.Invoke("bad", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kaboom" {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownObject(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	_, err := c.Invoke("ghost", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	s.Register("sq", func(op uint32, body []byte) ([]byte, error) {
		n := int(body[0])
		return []byte{byte(n * n % 251)}, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := dial(t, s)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reply, err := c.Invoke("sq", 0, []byte{byte(i)})
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if reply[0] != byte(i*i%251) {
					t.Errorf("sq(%d) = %d", i, reply[0])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestPipelinedRequestsOneConnection(t *testing.T) {
	s := startServer(t)
	s.Register("id", func(op uint32, body []byte) ([]byte, error) {
		return body, nil
	})
	c := dial(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			reply, err := c.Invoke("id", uint32(i), body)
			if err != nil {
				t.Errorf("invoke %d: %v", i, err)
				return
			}
			if !bytes.Equal(reply, body) {
				t.Errorf("reply %d = %q", i, reply)
			}
		}(i)
	}
	wg.Wait()
}

func TestOneway(t *testing.T) {
	s := startServer(t)
	var count atomic.Int32
	received := make(chan struct{}, 16)
	s.Register("sink", func(op uint32, body []byte) ([]byte, error) {
		count.Add(1)
		received <- struct{}{}
		return nil, nil
	})
	c := dial(t, s)
	for i := 0; i < 5; i++ {
		if err := c.Send("sink", 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-received:
		case <-time.After(5 * time.Second):
			t.Fatalf("one-way message %d never arrived", i)
		}
	}
	if count.Load() != 5 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestInvokeAfterServerClose(t *testing.T) {
	s := startServer(t)
	s.Register("x", func(op uint32, body []byte) ([]byte, error) { return nil, nil })
	c := dial(t, s)
	if _, err := c.Invoke("x", 0, nil); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := c.Invoke("x", 0, nil); err == nil {
		t.Error("invoke after server close succeeded")
	}
}

func TestLargeBody(t *testing.T) {
	s := startServer(t)
	s.Register("len", func(op uint32, body []byte) ([]byte, error) {
		return []byte{byte(len(body) >> 16)}, nil
	})
	c := dial(t, s)
	body := make([]byte, 1<<20)
	reply, err := c.Invoke("len", 0, body)
	if err != nil {
		t.Fatal(err)
	}
	if reply[0] != byte(len(body)>>16) {
		t.Errorf("reply = %d", reply[0])
	}
}

func TestRegisterReplaces(t *testing.T) {
	s := startServer(t)
	s.Register("v", func(op uint32, body []byte) ([]byte, error) { return []byte{1}, nil })
	s.Register("v", func(op uint32, body []byte) ([]byte, error) { return []byte{2}, nil })
	c := dial(t, s)
	reply, err := c.Invoke("v", 0, nil)
	if err != nil || reply[0] != 2 {
		t.Errorf("reply = %v, %v", reply, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{kind: kindRequest, id: 42, key: "obj/1", op: 3, body: []byte("payload")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.kind != in.kind || out.id != in.id || out.key != in.key || out.op != in.op || !bytes.Equal(out.body, in.body) {
		t.Errorf("frame = %+v", out)
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("XXXX")
	buf.Write(make([]byte, 32))
	if _, err := readFrame(&buf); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	// Oversized body rejected at write time.
	big := frame{kind: kindRequest, body: make([]byte, maxBody+1)}
	if err := writeFrame(&buf, big); err == nil {
		t.Error("oversized body accepted by writeFrame")
	}
	// Oversized key rejected at read time.
	buf.Reset()
	buf.WriteString(magic)
	buf.WriteByte(1)
	buf.WriteByte(kindRequest)
	buf.Write(make([]byte, 8))                // id
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // keyLen = huge
	if _, err := readFrame(&buf); err == nil {
		t.Error("oversized key accepted by readFrame")
	}
	// Unsupported version rejected.
	buf.Reset()
	buf.WriteString(magic)
	buf.WriteByte(9)
	buf.Write(make([]byte, 40))
	if _, err := readFrame(&buf); err == nil {
		t.Error("unsupported version accepted")
	}
}
