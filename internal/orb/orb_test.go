package orb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRequestReply(t *testing.T) {
	s := startServer(t)
	s.Register("echo", func(op uint32, body []byte) ([]byte, error) {
		out := append([]byte{byte(op)}, body...)
		return out, nil
	})
	c := dial(t, s)
	reply, err := c.Invoke("echo", 7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, append([]byte{7}, "hello"...)) {
		t.Errorf("reply = %q", reply)
	}
}

func TestRemoteError(t *testing.T) {
	s := startServer(t)
	s.Register("bad", func(op uint32, body []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	c := dial(t, s)
	_, err := c.Invoke("bad", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kaboom" {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownObject(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	_, err := c.Invoke("ghost", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	s.Register("sq", func(op uint32, body []byte) ([]byte, error) {
		n := int(body[0])
		return []byte{byte(n * n % 251)}, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := dial(t, s)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reply, err := c.Invoke("sq", 0, []byte{byte(i)})
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if reply[0] != byte(i*i%251) {
					t.Errorf("sq(%d) = %d", i, reply[0])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestPipelinedRequestsOneConnection(t *testing.T) {
	s := startServer(t)
	s.Register("id", func(op uint32, body []byte) ([]byte, error) {
		return body, nil
	})
	c := dial(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			reply, err := c.Invoke("id", uint32(i), body)
			if err != nil {
				t.Errorf("invoke %d: %v", i, err)
				return
			}
			if !bytes.Equal(reply, body) {
				t.Errorf("reply %d = %q", i, reply)
			}
		}(i)
	}
	wg.Wait()
}

func TestOneway(t *testing.T) {
	s := startServer(t)
	var count atomic.Int32
	received := make(chan struct{}, 16)
	s.Register("sink", func(op uint32, body []byte) ([]byte, error) {
		count.Add(1)
		received <- struct{}{}
		return nil, nil
	})
	c := dial(t, s)
	for i := 0; i < 5; i++ {
		if err := c.Send("sink", 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-received:
		case <-time.After(5 * time.Second):
			t.Fatalf("one-way message %d never arrived", i)
		}
	}
	if count.Load() != 5 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestInvokeAfterServerClose(t *testing.T) {
	s := startServer(t)
	s.Register("x", func(op uint32, body []byte) ([]byte, error) { return nil, nil })
	c := dial(t, s)
	if _, err := c.Invoke("x", 0, nil); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := c.Invoke("x", 0, nil); err == nil {
		t.Error("invoke after server close succeeded")
	}
}

func TestLargeBody(t *testing.T) {
	s := startServer(t)
	s.Register("len", func(op uint32, body []byte) ([]byte, error) {
		return []byte{byte(len(body) >> 16)}, nil
	})
	c := dial(t, s)
	body := make([]byte, 1<<20)
	reply, err := c.Invoke("len", 0, body)
	if err != nil {
		t.Fatal(err)
	}
	if reply[0] != byte(len(body)>>16) {
		t.Errorf("reply = %d", reply[0])
	}
}

func TestRegisterReplaces(t *testing.T) {
	s := startServer(t)
	s.Register("v", func(op uint32, body []byte) ([]byte, error) { return []byte{1}, nil })
	s.Register("v", func(op uint32, body []byte) ([]byte, error) { return []byte{2}, nil })
	c := dial(t, s)
	reply, err := c.Invoke("v", 0, nil)
	if err != nil || reply[0] != 2 {
		t.Errorf("reply = %v, %v", reply, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{kind: kindRequest, id: 42, key: "obj/1", op: 3, body: []byte("payload")}
	if err := writeFrame(&buf, in, Limits{}.withDefaults()); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf, Limits{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if out.kind != in.kind || out.id != in.id || out.key != in.key || out.op != in.op || !bytes.Equal(out.body, in.body) {
		t.Errorf("frame = %+v", out)
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("XXXX")
	buf.Write(make([]byte, 32))
	if _, err := readFrame(&buf, Limits{}.withDefaults()); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	// Oversized body rejected at write time.
	big := frame{kind: kindRequest, body: make([]byte, DefaultMaxBody+1)}
	if err := writeFrame(&buf, big, Limits{}.withDefaults()); err == nil {
		t.Error("oversized body accepted by writeFrame")
	}
	// Oversized key rejected at read time.
	buf.Reset()
	buf.WriteString(magic)
	buf.WriteByte(1)
	buf.WriteByte(kindRequest)
	buf.Write(make([]byte, 8))                // id
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // keyLen = huge
	if _, err := readFrame(&buf, Limits{}.withDefaults()); err == nil {
		t.Error("oversized key accepted by readFrame")
	}
	// Unsupported version rejected.
	buf.Reset()
	buf.WriteString(magic)
	buf.WriteByte(9)
	buf.Write(make([]byte, 40))
	if _, err := readFrame(&buf, Limits{}.withDefaults()); err == nil {
		t.Error("unsupported version accepted")
	}
}

// --- configurable frame limits (write and read side) ---

func TestWriteSideFrameLimits(t *testing.T) {
	s := startServer(t)
	s.Register("echo", func(op uint32, body []byte) ([]byte, error) { return body, nil })
	c, err := Dial(s.Addr(), WithMaxBody(64), WithMaxKey(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	if _, err := c.Invoke("echo", 0, make([]byte, 65)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized body error = %v, want ErrFrameTooLarge", err)
	}
	if _, err := c.Invoke("123456789", 0, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized key error = %v, want ErrFrameTooLarge", err)
	}
	if err := c.Send("123456789", 0, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized oneway key error = %v, want ErrFrameTooLarge", err)
	}
	// The rejection happens before any bytes hit the wire, so the
	// connection stays usable.
	reply, err := c.Invoke("echo", 0, make([]byte, 64))
	if err != nil || len(reply) != 64 {
		t.Fatalf("in-limit invoke after rejection: len=%d err=%v", len(reply), err)
	}
}

func TestReadSideFrameLimitServer(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxBody(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("echo", func(op uint32, body []byte) ([]byte, error) { return body, nil })

	c := dialAddr(t, s.Addr())
	// The client happily writes 1 KiB; the server's read side must refuse
	// it and drop the connection.
	_, err = c.Invoke("echo", 0, make([]byte, 1024))
	if err == nil {
		t.Fatal("oversized request was served")
	}
	// A fresh connection with a conforming request still works.
	c2 := dialAddr(t, s.Addr())
	if _, err := c2.Invoke("echo", 0, make([]byte, 64)); err != nil {
		t.Fatalf("in-limit request on fresh connection: %v", err)
	}
}

func TestReadSideFrameLimitClient(t *testing.T) {
	s := startServer(t)
	s.Register("blow", func(op uint32, body []byte) ([]byte, error) {
		return make([]byte, 1024), nil
	})
	c, err := Dial(s.Addr(), WithMaxBody(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	_, err = c.Invoke("blow", 0, nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized reply error = %v, want ErrFrameTooLarge", err)
	}
}

func dialAddr(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// --- per-request dispatch: no head-of-line blocking ---

// A slow handler must not delay a fast handler's reply on the same
// connection: serveConn dispatches each request frame in its own
// goroutine.
func TestNoHeadOfLineBlocking(t *testing.T) {
	s := startServer(t)
	slowRelease := make(chan struct{})
	s.Register("slow", func(op uint32, body []byte) ([]byte, error) {
		<-slowRelease
		return []byte("slow"), nil
	})
	s.Register("fast", func(op uint32, body []byte) ([]byte, error) {
		return []byte("fast"), nil
	})
	c := dial(t, s)

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", 0, nil)
		slowDone <- err
	}()

	// The fast request is written after the slow one is in flight, on the
	// same connection, and must complete while slow is still blocked.
	deadline := time.After(5 * time.Second)
	fastDone := make(chan error, 1)
	go func() {
		reply, err := c.Invoke("fast", 0, nil)
		if err == nil && string(reply) != "fast" {
			err = fmt.Errorf("reply %q", reply)
		}
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast invoke: %v", err)
		}
	case <-deadline:
		t.Fatal("fast request blocked behind slow handler")
	}

	close(slowRelease)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow invoke: %v", err)
	}
}
