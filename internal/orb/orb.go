// Package orb is the network runtime under Mockingbird's network-enabled
// stubs: a small GIOP-style protocol over TCP with request/reply
// correlation and one-way messages (the messaging model of the §5
// collaborative-objects case study). Payloads are opaque bytes; the typed
// layer (core) marshals them with package wire.
//
// Frame format (all integers little-endian):
//
//	magic   [4]byte "MBRD"
//	version u8 (1 or 2)
//	kind    u8 (request / reply / oneway / error / hello / cancel)
//	id      u64 (request correlation; 0 for oneway)
//	keyLen  u32
//	budget  u32 (version 2 request frames only: remaining time budget in
//	             milliseconds; 0 = no budget)
//	key     [keyLen]byte   (object key; empty on replies)
//	op      u32            (method alternative; protocol version on hello
//	                        frames, error code on error frames)
//	bodyLen u32, body [bodyLen]byte
//
// Version negotiation costs no round trip: a v2 server writes a hello
// frame (encoded as v1, so v1 clients parse and ignore it) the moment a
// connection is accepted. A v2 client that sees the hello upgrades its
// request encoding; one that never does (a v1 server) stays on v1 frames
// forever, so budgets are simply absent rather than an error. Cancel
// frames are likewise v1-encoded: a v1 server drops unknown kinds on the
// floor, which is exactly the no-op semantics cancellation wants.
package orb

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Message kinds.
const (
	kindRequest = 1
	kindReply   = 2
	kindOneway  = 3
	kindError   = 4
	// kindHello is sent by a server immediately on accept; op carries the
	// server's maximum protocol version. Old clients drop it (no pending
	// entry with id 0), new clients upgrade their request encoding.
	kindHello = 5
	// kindCancel is sent by a client to abort an in-flight request; id
	// names the request. Old servers drop it (unknown kind), new servers
	// cancel the per-request context.
	kindCancel = 6
	// Stream frames (protocol version 3). A stream is an id-correlated
	// call whose request and reply bodies travel as chunk frames under
	// credit-based flow control instead of single buffered frames; see
	// stream.go. Old peers never see them: clients only open streams on
	// connections whose hello negotiated v3.
	kindStreamOpen   = 7  // client → server; op is the method, body empty
	kindStreamChunk  = 8  // either direction; body is one payload chunk
	kindStreamClose  = 9  // either direction; op is a status (see below)
	kindStreamCredit = 10 // either direction; op grants op bytes of credit
)

const magic = "MBRD"

// protoVersion is the maximum protocol version this build speaks.
// Version 2 adds a millisecond deadline budget to request frames and the
// hello/cancel frame kinds. Version 3 adds the stream frame kinds with
// credit-based flow control; stream-open frames carry the same budget
// field v2 gave requests.
const protoVersion = 3

// Default frame limits.
const (
	// DefaultMaxBody bounds message bodies (16 MiB).
	DefaultMaxBody = 16 << 20
	// DefaultMaxKey bounds object keys (4 KiB).
	DefaultMaxKey = 4096
	// DefaultMaxPerConn bounds concurrent requests dispatched per server
	// connection, so one client cannot monopolize the daemon by pipelining
	// an unbounded number of requests.
	DefaultMaxPerConn = 1024
)

// Error-frame codes, carried in the otherwise-unused op field of error
// frames so clients can reconstruct typed errors without parsing message
// text. Unknown codes degrade to a plain RemoteError, which keeps old
// clients compatible with new servers and vice versa.
const (
	codeErrGeneric    = 0 // ordinary handler error → RemoteError
	codeErrPanic      = 1 // handler panicked → ErrServerPanic
	codeErrOverloaded = 2 // admission control shed the request → ErrOverloaded
	codeErrExpired    = 3 // the request's time budget was already spent → ErrExpired
)

// ErrFrameTooLarge is returned (wrapped, with detail) when a frame's body
// or object key exceeds the endpoint's configured limit, on either the
// writing or the reading side.
var ErrFrameTooLarge = errors.New("orb: frame exceeds limit")

// Typed transport errors. Resilience layers (internal/resil) classify on
// these: ErrConnClosed is a connection-level failure and safe to retry
// against an idempotent service; ErrDeadline and ErrCanceled mean the
// call's own context expired and the overall budget is spent.
var (
	// ErrConnClosed reports that the connection died (locally or
	// remotely) before the call completed. All in-flight Invokes on a
	// dying connection fail with an error wrapping ErrConnClosed.
	ErrConnClosed = errors.New("orb: connection closed")
	// ErrDeadline reports that the call's context deadline expired.
	ErrDeadline = errors.New("orb: call deadline exceeded")
	// ErrCanceled reports that the call's context was canceled.
	ErrCanceled = errors.New("orb: call canceled")
	// ErrDial wraps connection-establishment failures, so callers can
	// distinguish "could not reach the server" from errors the server
	// itself returned.
	ErrDial = errors.New("orb: dial")
	// ErrServerPanic reports that the remote handler panicked while
	// serving the call. The server recovered and the connection is still
	// healthy, but the call must not be blindly retried: the panic is
	// most likely deterministic for the given input.
	ErrServerPanic = errors.New("orb: handler panicked")
	// ErrOverloaded reports that the server shed the call under admission
	// control instead of queuing it. The request was never dispatched, so
	// retrying after a backoff is safe and expected.
	ErrOverloaded = errors.New("orb: server overloaded")
	// ErrExpired reports that the request's propagated time budget was
	// already spent when the server (or a relay on the path) looked at
	// it: the caller has given up, so no work was started on its behalf.
	// Distinct from ErrOverloaded — the server had capacity; the caller
	// ran out of time. Retrying without a fresh budget is pointless.
	ErrExpired = errors.New("orb: request budget expired")
)

// ctxErr maps a context error to the orb typed equivalent.
func ctxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// budgetKey carries an explicit wire budget through a context.
type budgetKey struct{}

// ContextWithBudget returns a context whose orb calls carry an explicit
// wire budget of d, independent of the context's own deadline. Clients
// use it to give downstream hops less time than they are willing to wait
// locally (e.g. `mbird remote -budget`), which is how a caller observes
// the server-side ErrExpired shed instead of its own local timeout.
func ContextWithBudget(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, budgetKey{}, d)
}

// budgetMillis derives the wire budget for a request from ctx: an
// explicit ContextWithBudget value wins, else the remaining time to the
// context deadline, else 0 (no budget). Positive budgets round up to at
// least 1ms so "a little time left" never encodes as "no budget".
func budgetMillis(ctx context.Context) uint32 {
	if v, ok := ctx.Value(budgetKey{}).(time.Duration); ok && v > 0 {
		return clampMillis(v)
	}
	if d, ok := ctx.Deadline(); ok {
		rem := time.Until(d)
		if rem <= 0 {
			return 1
		}
		return clampMillis(rem)
	}
	return 0
}

func clampMillis(d time.Duration) uint32 {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		return 1
	}
	if ms > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}

// Limits configures per-endpoint frame limits. The zero value selects the
// defaults.
type Limits struct {
	// MaxBody bounds request/reply body sizes in bytes.
	MaxBody int
	// MaxKey bounds object key lengths in bytes.
	MaxKey int
	// MaxPerConn bounds concurrent requests dispatched per server
	// connection; excess requests are answered immediately with
	// ErrOverloaded (oneways are dropped). Negative means unlimited.
	// Ignored by clients.
	MaxPerConn int
	// MaxProtoVersion caps the protocol version the endpoint speaks.
	// 0 selects the build's maximum (2). Setting 1 makes a server behave
	// exactly like a pre-budget build (no hello, v2 frames rejected) and
	// makes a client ignore hellos — the interop tests use it to pin one
	// side down.
	MaxProtoVersion int
	// StreamWindow is the initial per-stream flow-control credit this
	// endpoint grants its peer, in bytes; it bounds the bytes in flight
	// per stream direction. 0 selects DefaultStreamWindow.
	StreamWindow int
	// PoolBufs opts a server into recycling per-request state: request
	// body buffers are drawn from a pool and returned once the reply is
	// on the wire, and request contexts are pooled rather than built
	// from the context package per frame. Off by default because it
	// narrows the handler contract: handlers must not retain the request
	// body or the context (or anything derived from either) past return
	// — a handler that detaches work must copy the body first. The
	// daemons (mbirdd, mbirdgw) satisfy that contract and enable it.
	PoolBufs bool
}

func (l Limits) withDefaults() Limits {
	if l.MaxBody <= 0 {
		l.MaxBody = DefaultMaxBody
	}
	if l.MaxKey <= 0 {
		l.MaxKey = DefaultMaxKey
	}
	switch {
	case l.MaxPerConn == 0:
		l.MaxPerConn = DefaultMaxPerConn
	case l.MaxPerConn < 0:
		l.MaxPerConn = int(^uint(0) >> 1)
	}
	switch {
	case l.MaxProtoVersion <= 0:
		l.MaxProtoVersion = protoVersion
	case l.MaxProtoVersion > protoVersion:
		l.MaxProtoVersion = protoVersion
	}
	if l.StreamWindow <= 0 {
		l.StreamWindow = DefaultStreamWindow
	}
	return l
}

// Option configures a Server or Client at construction.
type Option func(*Limits)

// WithMaxBody bounds frame bodies for the endpoint.
func WithMaxBody(n int) Option { return func(l *Limits) { l.MaxBody = n } }

// WithMaxKey bounds object keys for the endpoint.
func WithMaxKey(n int) Option { return func(l *Limits) { l.MaxKey = n } }

// WithMaxPerConn bounds concurrent requests per server connection;
// negative means unlimited.
func WithMaxPerConn(n int) Option { return func(l *Limits) { l.MaxPerConn = n } }

// WithMaxProtoVersion caps the protocol version the endpoint speaks
// (1 = pre-budget wire behavior). Mainly for interop tests and staged
// rollouts.
func WithMaxProtoVersion(n int) Option { return func(l *Limits) { l.MaxProtoVersion = n } }

// WithBufPooling opts a server into pooled request bodies and request
// contexts (see Limits.PoolBufs for the handler contract it implies).
func WithBufPooling() Option { return func(l *Limits) { l.PoolBufs = true } }

func applyOptions(opts []Option) Limits {
	var l Limits
	for _, o := range opts {
		o(&l)
	}
	return l.withDefaults()
}

type frame struct {
	ver  byte // wire version; 0 means 1
	kind byte
	id   uint64
	key  string
	op   uint32
	body []byte
	// budget is the remaining time budget in milliseconds (v2 request
	// frames only; 0 = none).
	budget uint32
	// hdrAt is the read-side timestamp taken right after the fixed header
	// arrived. Budgets anchor here: a body that trickles in past the
	// budget is already expired by the time it could be dispatched.
	hdrAt time.Time
}

// frameBufPool recycles the scratch buffers frames are serialized into
// before the single conn.Write. Writes are synchronous, so the buffer
// can be returned as soon as Write does. Buffers that grew past
// maxPooledFrameBuf (a client streamed one huge body) are dropped
// instead of pinning megabytes in the pool.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

const maxPooledFrameBuf = 1 << 20

// writevThreshold is the body size past which a frame is written as a
// scatter-gather pair (header buffer + body, one writev on a TCP conn)
// instead of copied into one contiguous buffer first. Small bodies stay
// on the copy path: one syscall on exactly one buffer beats two iovecs.
const writevThreshold = 1024

func writeFrame(w io.Writer, f frame, lim Limits) (int, error) {
	if len(f.body) > lim.MaxBody {
		return 0, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrFrameTooLarge, len(f.body), lim.MaxBody)
	}
	if len(f.key) > lim.MaxKey {
		return 0, fmt.Errorf("%w: object key of %d bytes exceeds %d", ErrFrameTooLarge, len(f.key), lim.MaxKey)
	}
	ver := f.ver
	if ver == 0 {
		ver = 1
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, magic...)
	buf = append(buf, ver, f.kind)
	buf = binary.LittleEndian.AppendUint64(buf, f.id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.key)))
	if (ver >= 2 && f.kind == kindRequest) || (ver >= 3 && f.kind == kindStreamOpen) {
		buf = binary.LittleEndian.AppendUint32(buf, f.budget)
	}
	buf = append(buf, f.key...)
	buf = binary.LittleEndian.AppendUint32(buf, f.op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.body)))
	var n int
	var err error
	if len(f.body) >= writevThreshold {
		bufs := net.Buffers{buf, f.body}
		var nn int64
		nn, err = bufs.WriteTo(w)
		n = int(nn)
	} else {
		buf = append(buf, f.body...)
		n, err = w.Write(buf)
	}
	if cap(buf) <= maxPooledFrameBuf {
		*bp = buf
		frameBufPool.Put(bp)
	}
	return n, err
}

// bodyBufPool recycles request-body buffers on servers that opted into
// pooling; the dispatch path returns a body once its reply is written.
var bodyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// getBodyBuf returns a pooled buffer of exactly n bytes.
func getBodyBuf(n int) []byte {
	bp := bodyBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// putBodyBuf recycles a buffer handed out by getBodyBuf. Buffers that
// grew past maxPooledFrameBuf are dropped rather than pinned.
func putBodyBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledFrameBuf {
		return
	}
	b = b[:0]
	bodyBufPool.Put(&b)
}

// frameReader reads frames from one connection, reusing fixed scratch
// for the header fields and interning the (almost always identical)
// object key across frames so the steady-state read path allocates only
// the body — and not even that on servers with pooling enabled. It is
// owned by a single reader goroutine and must not be shared.
type frameReader struct {
	r    io.Reader
	lim  Limits
	pool bool
	// scratch holds head (18) + budget (4) + tail (8).
	scratch [30]byte
	keyBuf  []byte
	lastKey string
}

// readFrame decodes a single frame with a one-shot reader. Connection
// loops keep a frameReader instead so the scratch survives across
// frames; this helper serves tests and single-frame call sites.
func readFrame(r io.Reader, lim Limits) (frame, error) {
	fr := frameReader{r: r, lim: lim}
	return fr.read()
}

func (fr *frameReader) read() (frame, error) {
	var f frame
	head := fr.scratch[:18]
	if _, err := io.ReadFull(fr.r, head); err != nil {
		return f, err
	}
	f.hdrAt = time.Now()
	if string(head[:4]) != magic {
		return f, fmt.Errorf("orb: bad magic %q", head[:4])
	}
	ver := head[4]
	if ver < 1 || int(ver) > fr.lim.MaxProtoVersion {
		return f, fmt.Errorf("orb: unsupported version %d", ver)
	}
	f.ver = ver
	f.kind = head[5]
	f.id = binary.LittleEndian.Uint64(head[6:])
	keyLen := binary.LittleEndian.Uint32(head[14:])
	if uint64(keyLen) > uint64(fr.lim.MaxKey) {
		return f, fmt.Errorf("%w: object key of %d bytes exceeds %d", ErrFrameTooLarge, keyLen, fr.lim.MaxKey)
	}
	if (ver >= 2 && f.kind == kindRequest) || (ver >= 3 && f.kind == kindStreamOpen) {
		bud := fr.scratch[18:22]
		if _, err := io.ReadFull(fr.r, bud); err != nil {
			return f, err
		}
		f.budget = binary.LittleEndian.Uint32(bud)
	}
	if keyLen > 0 {
		if cap(fr.keyBuf) < int(keyLen) {
			fr.keyBuf = make([]byte, keyLen)
		}
		key := fr.keyBuf[:keyLen]
		if _, err := io.ReadFull(fr.r, key); err != nil {
			return f, err
		}
		// Connections overwhelmingly invoke one object; reuse the interned
		// string instead of allocating an identical one per frame.
		if fr.lastKey != string(key) {
			fr.lastKey = string(key)
		}
		f.key = fr.lastKey
	}
	tail := fr.scratch[22:30]
	if _, err := io.ReadFull(fr.r, tail); err != nil {
		return f, err
	}
	f.op = binary.LittleEndian.Uint32(tail)
	bodyLen := binary.LittleEndian.Uint32(tail[4:])
	if uint64(bodyLen) > uint64(fr.lim.MaxBody) {
		return f, fmt.Errorf("%w: body of %d bytes exceeds %d", ErrFrameTooLarge, bodyLen, fr.lim.MaxBody)
	}
	if fr.pool {
		f.body = getBodyBuf(int(bodyLen))
	} else {
		f.body = make([]byte, bodyLen)
	}
	if _, err := io.ReadFull(fr.r, f.body); err != nil {
		return f, err
	}
	return f, nil
}

// serverCtx is the context.Context handed to request handlers: a flat
// cancel-plus-deadline context with no parent chain. Compared to
// context.WithDeadline it allocates nothing on the steady-state path —
// the struct, its done channel, and its deadline timer are all reused
// across requests when the server has pooling enabled. The reuse
// contract matches Limits.PoolBufs: handlers must not hold the context
// (or its Done channel) past return.
type serverCtx struct {
	dl    time.Time
	hasDL bool

	mu     sync.Mutex
	done   chan struct{}
	closed bool // done is non-nil and closed
	err    error
	timer  *time.Timer
	armed  bool
	fired  bool // the armed timer's callback has run
}

var serverCtxPool = sync.Pool{New: func() any { return new(serverCtx) }}

// acquireServerCtx readies a context for one request, arming the pooled
// deadline timer when the request carries a budget.
func acquireServerCtx(pool bool, deadline time.Time, hasDL bool) *serverCtx {
	var c *serverCtx
	if pool {
		c = serverCtxPool.Get().(*serverCtx)
	} else {
		c = new(serverCtx)
	}
	c.dl, c.hasDL = deadline, hasDL
	if hasDL {
		d := time.Until(deadline)
		if d < 0 {
			d = 0
		}
		c.mu.Lock()
		c.armed, c.fired = true, false
		c.mu.Unlock()
		if c.timer == nil {
			c.timer = time.AfterFunc(d, c.fireTimer)
		} else {
			c.timer.Reset(d)
		}
	}
	return c
}

// release disarms and recycles a request context once its reply is on
// the wire. A context whose deadline callback is caught mid-flight is
// abandoned to the GC instead of pooled — reusing it would let the
// stale callback cancel the next request.
func (c *serverCtx) release(pool bool) {
	c.mu.Lock()
	wasArmed := c.armed
	c.armed = false
	c.mu.Unlock()
	if wasArmed && !c.timer.Stop() {
		c.mu.Lock()
		fired := c.fired
		c.mu.Unlock()
		if !fired {
			return
		}
	}
	if !pool {
		return
	}
	c.mu.Lock()
	c.err = nil
	if c.closed {
		// The open-done-chan case keeps the channel for the next request;
		// a closed channel is spent and must be dropped.
		c.done = nil
		c.closed = false
	}
	c.mu.Unlock()
	c.hasDL = false
	serverCtxPool.Put(c)
}

func (c *serverCtx) fireTimer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fired = true
	if !c.armed {
		return
	}
	c.armed = false
	if c.err == nil {
		c.err = context.DeadlineExceeded
		if c.done != nil && !c.closed {
			close(c.done)
			c.closed = true
		}
	}
}

// cancel aborts the request (client cancel frame or teardown).
func (c *serverCtx) cancel(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		if c.done != nil && !c.closed {
			close(c.done)
			c.closed = true
		}
	}
}

func (c *serverCtx) Deadline() (time.Time, bool) { return c.dl, c.hasDL }

func (c *serverCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.err != nil {
			close(c.done)
			c.closed = true
		}
	}
	return c.done
}

func (c *serverCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *serverCtx) Value(key any) any { return nil }

// Handler serves invocations on one exported object. op selects the
// method alternative; the returned bytes are the reply body. For one-way
// messages the return value is discarded. ctx carries the request's
// propagated deadline budget (if any) and is canceled when the client
// sends a cancel frame or its connection dies — long handlers should
// watch it and abandon work nobody is waiting for.
type Handler func(ctx context.Context, op uint32, body []byte) ([]byte, error)

// Call invokes h and converts a panic into an error wrapping
// ErrServerPanic, so one poisoned request cannot take down the process.
// The server uses it for every dispatch; handler wrappers that move work
// onto their own goroutines (e.g. the broker's request-timeout wrapper)
// must use it there too, because a panic on a goroutine the orb never
// sees is fatal no matter what the orb recovers.
func Call(ctx context.Context, h Handler, op uint32, body []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrServerPanic, r)
		}
	}()
	return h(ctx, op, body)
}

// errFrameCode maps a handler error to its error-frame code and message
// body. The sentinel's own prefix is trimmed from the body: the client
// re-wraps the body in the same sentinel, and keeping the prefix would
// double it.
func errFrameCode(err error) (uint32, []byte) {
	msg := err.Error()
	switch {
	case errors.Is(err, ErrServerPanic):
		return codeErrPanic, []byte(strings.TrimPrefix(msg, ErrServerPanic.Error()+": "))
	case errors.Is(err, ErrOverloaded):
		return codeErrOverloaded, []byte(strings.TrimPrefix(msg, ErrOverloaded.Error()+": "))
	case errors.Is(err, ErrExpired):
		return codeErrExpired, []byte(strings.TrimPrefix(msg, ErrExpired.Error()+": "))
	}
	return codeErrGeneric, []byte(msg)
}

// errFromFrame reconstructs the typed error an error frame carries.
func errFromFrame(f frame) error {
	switch f.op {
	case codeErrPanic:
		return fmt.Errorf("%w: %s", ErrServerPanic, f.body)
	case codeErrOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, f.body)
	case codeErrExpired:
		return fmt.Errorf("%w: %s", ErrExpired, f.body)
	}
	return &RemoteError{Msg: string(f.body)}
}

// ServerStats counts hardening events on a server.
type ServerStats struct {
	// Panics is the number of handler panics recovered.
	Panics int64
	// Shed is the number of requests refused by the per-connection
	// concurrency cap (one-way messages dropped over the cap included).
	Shed int64
	// Expired is the number of requests whose propagated budget was
	// already spent at dispatch time: they were answered with ErrExpired
	// (or dropped, for oneways) before the handler ran — zero work done
	// for callers that had already given up.
	Expired int64
	// Canceled is the number of in-flight requests aborted by a client
	// cancel frame.
	Canceled int64
}

// Server exports objects on a TCP listener.
type Server struct {
	ln  net.Listener
	lim Limits

	panics   atomic.Int64
	shed     atomic.Int64
	expired  atomic.Int64
	canceled atomic.Int64

	mu             sync.Mutex
	handlers       map[string]Handler
	streamHandlers map[string]StreamHandler
	conns          map[net.Conn]struct{}
	closed         bool
	draining       bool
	wg             sync.WaitGroup
}

// NewServer starts a server listening on addr (e.g. "127.0.0.1:0").
// Options adjust the frame limits (defaults: 16 MiB bodies, 4 KiB keys).
func NewServer(addr string, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb: listen: %w", err)
	}
	s := &Server{
		ln:             ln,
		lim:            applyOptions(opts),
		handlers:       make(map[string]Handler),
		streamHandlers: make(map[string]StreamHandler),
		conns:          make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server's hardening counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Panics:   s.panics.Load(),
		Shed:     s.shed.Load(),
		Expired:  s.expired.Load(),
		Canceled: s.canceled.Load(),
	}
}

// Draining reports whether the server has begun a graceful shutdown and
// is no longer accepting work. Health endpoints expose it as readiness.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// Register exports an object under a key. Registering an existing key
// replaces the handler.
func (s *Server) Register(key string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[key] = h
}

// Unregister withdraws an exported object. Requests already dispatched
// to the old handler finish normally; new requests for the key are
// answered with a no-object error. Proxies (the interop gateway) use it
// to retire routes on a hot reload without restarting the listener.
func (s *Server) Unregister(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.handlers, key)
	delete(s.streamHandlers, key)
}

// Close stops the listener and all connections, and waits for the
// serving goroutines to exit. In-flight requests are abandoned; use
// Shutdown to drain them first.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Shutdown gracefully drains the server: it stops accepting connections
// and new frames, lets requests already dispatched finish and write
// their replies, then closes every connection. If ctx expires before the
// drain completes, remaining connections are closed forcibly (their
// in-flight requests fail client-side with ErrConnClosed). Shutdown
// always waits for the serving goroutines to exit before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for c := range s.conns {
		// Nudge the per-connection read loops off their blocking reads:
		// no new frames are picked up, while replies (writes) still flow.
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	err := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	var inFlight atomic.Int64
	pool := s.lim.PoolBufs
	// cancels maps in-flight request ids to their contexts so a cancel
	// frame can abort exactly the request it names. Lookup, removal, and
	// the cancel call itself all run under cancelMu so a cancel frame can
	// never touch a context its request has already released.
	var cancelMu sync.Mutex
	cancels := make(map[uint64]*serverCtx)
	defer reqWG.Wait()
	ss := &srvStreams{s: s, conn: conn, writeMu: &writeMu, lim: s.lim, pool: pool,
		m: make(map[uint64]*srvStream)}
	// Declared after reqWG.Wait so it runs first: wake every stream
	// handler blocked on a read or a credit before waiting them out.
	defer ss.failAll(ErrConnClosed)
	if s.lim.MaxProtoVersion >= 2 {
		// Advertise v2 before reading anything. v1 clients parse this as a
		// frame for a request they never made and drop it.
		writeMu.Lock()
		_, err := writeFrame(conn, frame{kind: kindHello, op: uint32(s.lim.MaxProtoVersion)}, s.lim)
		writeMu.Unlock()
		if err != nil {
			return
		}
	}
	fr := frameReader{r: conn, lim: s.lim, pool: pool}
	for {
		f, err := fr.read()
		if err != nil {
			return
		}
		switch f.kind {
		case kindRequest, kindOneway:
			s.mu.Lock()
			h := s.handlers[f.key]
			s.mu.Unlock()
			req := f
			// Expired-budget shed: if the caller's propagated budget was
			// spent before the frame could be dispatched (e.g. the body
			// trickled in slowly), answer with a typed ErrExpired and do
			// no work at all. Checked before the concurrency cap — an
			// expired request should not even count against capacity.
			var deadline time.Time
			if req.budget > 0 {
				deadline = req.hdrAt.Add(time.Duration(req.budget) * time.Millisecond)
				if over := time.Since(deadline); over >= 0 {
					s.expired.Add(1)
					if pool {
						putBodyBuf(req.body)
					}
					if req.kind == kindOneway {
						continue
					}
					reply := frame{kind: kindError, id: req.id, op: codeErrExpired,
						body: []byte(fmt.Sprintf("budget of %dms spent %v before dispatch", req.budget, over.Round(time.Millisecond)))}
					writeMu.Lock()
					_, _ = writeFrame(conn, reply, s.lim)
					writeMu.Unlock()
					continue
				}
			}
			// Per-connection concurrency cap: a client pipelining past the
			// cap is shed immediately (no dispatch, no queue) with a typed
			// Overloaded error it can back off on. One-way messages have no
			// reply to carry the error, so they are just dropped.
			if inFlight.Load() >= int64(s.lim.MaxPerConn) {
				s.shed.Add(1)
				if pool {
					putBodyBuf(req.body)
				}
				if req.kind == kindOneway {
					continue
				}
				reply := frame{kind: kindError, id: req.id, op: codeErrOverloaded,
					body: []byte(fmt.Sprintf("connection exceeds %d concurrent requests", s.lim.MaxPerConn))}
				writeMu.Lock()
				_, _ = writeFrame(conn, reply, s.lim)
				writeMu.Unlock()
				continue
			}
			reqCtx := acquireServerCtx(pool, deadline, req.budget > 0)
			if req.kind == kindRequest {
				cancelMu.Lock()
				cancels[req.id] = reqCtx
				cancelMu.Unlock()
			}
			hadBudget := req.budget > 0
			inFlight.Add(1)
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer inFlight.Add(-1)
				defer func() {
					if req.kind == kindRequest {
						cancelMu.Lock()
						delete(cancels, req.id)
						cancelMu.Unlock()
					}
					reqCtx.release(pool)
					if pool {
						putBodyBuf(req.body)
					}
				}()
				var reply frame
				reply.id = req.id
				if h == nil {
					reply.kind = kindError
					reply.body = []byte(fmt.Sprintf("no object %q", req.key))
				} else {
					body, err := Call(reqCtx, h, req.op, req.body)
					if err != nil {
						if errors.Is(err, ErrServerPanic) {
							s.panics.Add(1)
						}
						// A handler that bailed because the propagated
						// budget ran out mid-work reports ErrExpired, not a
						// generic error: the caller's clock ran out, the
						// service is healthy.
						if hadBudget && !errors.Is(err, ErrExpired) &&
							(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrDeadline)) &&
							reqCtx.Err() != nil {
							err = fmt.Errorf("%w: handler abandoned at budget expiry: %v", ErrExpired, err)
						}
						reply.kind = kindError
						reply.op, reply.body = errFrameCode(err)
					} else {
						reply.kind = kindReply
						reply.body = body
					}
				}
				if req.kind == kindOneway {
					return
				}
				writeMu.Lock()
				defer writeMu.Unlock()
				_, _ = writeFrame(conn, reply, s.lim)
			}()
		case kindStreamOpen:
			s.mu.Lock()
			sh := s.streamHandlers[f.key]
			s.mu.Unlock()
			req := f
			if pool {
				putBodyBuf(req.body)
			}
			req.body = nil
			// Same dispatch gates as buffered requests: expired budgets
			// shed before the concurrency cap, both answered with typed
			// error frames.
			var deadline time.Time
			if req.budget > 0 {
				deadline = req.hdrAt.Add(time.Duration(req.budget) * time.Millisecond)
				if over := time.Since(deadline); over >= 0 {
					s.expired.Add(1)
					reply := frame{kind: kindError, id: req.id, op: codeErrExpired,
						body: []byte(fmt.Sprintf("budget of %dms spent %v before dispatch", req.budget, over.Round(time.Millisecond)))}
					writeMu.Lock()
					_, _ = writeFrame(conn, reply, s.lim)
					writeMu.Unlock()
					continue
				}
			}
			if sh == nil {
				reply := frame{kind: kindError, id: req.id,
					body: []byte(fmt.Sprintf("no stream object %q", req.key))}
				writeMu.Lock()
				_, _ = writeFrame(conn, reply, s.lim)
				writeMu.Unlock()
				continue
			}
			if inFlight.Load() >= int64(s.lim.MaxPerConn) {
				s.shed.Add(1)
				reply := frame{kind: kindError, id: req.id, op: codeErrOverloaded,
					body: []byte(fmt.Sprintf("connection exceeds %d concurrent requests", s.lim.MaxPerConn))}
				writeMu.Lock()
				_, _ = writeFrame(conn, reply, s.lim)
				writeMu.Unlock()
				continue
			}
			ss.dispatch(req, sh, acquireServerCtx(pool, deadline, req.budget > 0), &reqWG, &inFlight)
		case kindStreamChunk, kindStreamClose, kindStreamCredit:
			if !ss.handleFrame(f) {
				// Flow-control violation: the peer wrote past its credit.
				// The connection is the unit of trust; kill it.
				return
			}
		case kindCancel:
			cancelMu.Lock()
			rc := cancels[f.id]
			delete(cancels, f.id)
			if rc != nil {
				rc.cancel(context.Canceled)
			}
			cancelMu.Unlock()
			if rc != nil {
				s.canceled.Add(1)
			} else if ss.cancel(f.id) {
				s.canceled.Add(1)
			}
			if pool {
				putBodyBuf(f.body)
			}
		default:
			// Unexpected frame on a server connection; drop it.
			if pool {
				putBodyBuf(f.body)
			}
		}
	}
}

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "orb: remote: " + e.Msg }

// result is one call's outcome, delivered through its pending-map slot:
// either a reply/error frame or the connection-level error that killed
// the call.
type result struct {
	f   frame
	err error
}

// resultChPool recycles the per-call reply channels. A channel is only
// returned to the pool on paths where no sender can still be holding it:
// after the single send was received, or after the call's pending-map
// entry was removed while still present (proving no sender claimed it).
// Abandoned calls whose entry was already claimed leak their channel to
// the GC — the late sender owns it.
var resultChPool = sync.Pool{New: func() any { return make(chan result, 1) }}

// deadlineSlack is how far past a context's deadline the pooled
// backstop timer fires. A context with a working Done channel expires
// through that channel well inside the slack, preserving its exact
// expiry semantics; only deadline-only contexts fall through to the
// backstop.
const deadlineSlack = 5 * time.Millisecond

// waitTimer is a pooled timer for deadline-bounded reply waits. The
// fire channel is drained on acquire, and a consumer that wakes early
// (a stale fire from a previous user slipping past Stop) re-arms and
// keeps waiting — so the classic pooled-timer race costs a spurious
// wakeup, never a wrong result.
var waitTimerPool = sync.Pool{
	New: func() any {
		t := time.NewTimer(time.Hour)
		t.Stop()
		return t
	},
}

func acquireWaitTimer(d time.Duration) *time.Timer {
	t := waitTimerPool.Get().(*time.Timer)
	select {
	case <-t.C:
	default:
	}
	t.Reset(d)
	return t
}

func releaseWaitTimer(t *time.Timer) {
	t.Stop()
	waitTimerPool.Put(t)
}

// Client is a connection to a Server, safe for concurrent use. Requests
// are pipelined and correlated by id.
type Client struct {
	conn net.Conn
	lim  Limits

	writeMu sync.Mutex

	// peerVer is the negotiated protocol version: 1 until a hello frame
	// proves the server speaks something newer.
	peerVer atomic.Int32
	verOnce sync.Once
	verCh   chan struct{}

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	streams map[uint64]*StreamCall
	err     error
	done    chan struct{}
}

// Dial connects to a server address. Options adjust the client's frame
// limits (defaults: 16 MiB bodies, 4 KiB keys).
func Dial(addr string, opts ...Option) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a server address, bounding the dial by the
// context's deadline or cancellation.
func DialContext(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrDial, err)
	}
	c := &Client{
		conn:    conn,
		lim:     applyOptions(opts),
		pending: make(map[uint64]chan result),
		streams: make(map[uint64]*StreamCall),
		done:    make(chan struct{}),
		verCh:   make(chan struct{}),
	}
	c.peerVer.Store(1)
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; in-flight Invokes fail with
// ErrConnClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// Err returns the connection's terminal error, or nil while the
// connection is healthy. Connection pools use it as the health check.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ProtoVersion returns the negotiated protocol version: 1 until the
// server's hello frame arrives and proves it speaks v2, then the
// negotiated version. Budgets only travel on v2 connections.
func (c *Client) ProtoVersion() int { return int(c.peerVer.Load()) }

// AwaitVersion blocks until version negotiation settles — the server's
// hello arrived, the connection died, or ctx expired — and returns the
// version the connection speaks. Against a v1 server no hello ever
// comes, so callers bound the wait with ctx and get 1 back; pools wait a
// few milliseconds after dialing so the first budgeted request doesn't
// race the hello.
func (c *Client) AwaitVersion(ctx context.Context) int {
	select {
	case <-c.verCh:
	case <-c.done:
	case <-ctx.Done():
	}
	return c.ProtoVersion()
}

// fail records the connection's terminal error and fails every in-flight
// call with it, draining the pending map so no caller is left blocked
// and no entry leaks.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			c.err = ErrConnClosed
		} else {
			c.err = fmt.Errorf("%w: %w", ErrConnClosed, err)
		}
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- result{err: c.err}
	}
	for id, sc := range c.streams {
		delete(c.streams, id)
		sc.connFail(c.err)
	}
}

func (c *Client) readLoop() {
	defer close(c.done)
	fr := frameReader{r: c.conn, lim: c.lim}
	for {
		f, err := fr.read()
		if err != nil {
			c.fail(err)
			return
		}
		if f.kind == kindHello {
			if c.lim.MaxProtoVersion >= 2 && f.op >= 2 {
				v := f.op
				if v > uint32(c.lim.MaxProtoVersion) {
					v = uint32(c.lim.MaxProtoVersion)
				}
				c.peerVer.Store(int32(v))
			}
			c.verOnce.Do(func() { close(c.verCh) })
			continue
		}
		c.mu.Lock()
		ch := c.pending[f.id]
		delete(c.pending, f.id)
		var sc *StreamCall
		if ch == nil {
			// Stream-correlated frames (chunks, closes, credits — and
			// error/reply frames answering a stream open) route to the
			// live stream call instead of the pending map.
			sc = c.streams[f.id]
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- result{f: f}
		} else if sc != nil {
			sc.onFrame(f)
		}
	}
}

// write serializes a frame onto the connection. When the context carries
// a deadline it is applied as the write deadline; a write that fails
// after putting bytes on the wire has left a partial frame there, so the
// connection is killed (failing all other in-flight calls) rather than
// left unframeable. A write that fails before any byte reaches the wire
// — the common case when a caller's deadline expires between arming it
// and the syscall — leaves the stream perfectly framed, so the
// connection stays usable and only this call reports the deadline.
func (c *Client) write(ctx context.Context, f frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if d, ok := ctx.Deadline(); ok {
		_ = c.conn.SetWriteDeadline(d)
		defer func() { _ = c.conn.SetWriteDeadline(time.Time{}) }()
	}
	n, err := writeFrame(c.conn, f, c.lim)
	if err != nil && !errors.Is(err, ErrFrameTooLarge) {
		var nerr net.Error
		timeout := errors.As(err, &nerr) && nerr.Timeout()
		if timeout && n == 0 {
			return fmt.Errorf("%w: write: %v", ErrDeadline, err)
		}
		_ = c.conn.Close()
		if timeout {
			return fmt.Errorf("%w: write: %v", ErrDeadline, err)
		}
		return fmt.Errorf("%w: write: %v", ErrConnClosed, err)
	}
	return err
}

// sendCancel best-effort aborts an abandoned request server-side. Runs
// on its own goroutine so the abandoning caller returns immediately; the
// write is bounded so a wedged connection cannot pin the goroutine.
func (c *Client) sendCancel(id uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = c.write(ctx, frame{kind: kindCancel, id: id})
}

// Invoke sends a request to the object's op and waits for the reply
// body.
func (c *Client) Invoke(key string, op uint32, body []byte) ([]byte, error) {
	return c.InvokeContext(context.Background(), key, op, body)
}

// InvokeContext sends a request and waits for the reply body, honoring
// the context: on deadline expiry or cancellation the pending call is
// abandoned (its map entry removed, a late reply discarded, a cancel
// frame sent so the server stops working on it) and a typed
// ErrDeadline/ErrCanceled is returned. The connection itself stays
// usable — only a write that timed out mid-frame poisons it.
//
// On v2 connections the context's remaining time (or an explicit
// ContextWithBudget value) travels with the request as its deadline
// budget, so every downstream hop can shed work the caller has already
// given up on.
func (c *Client) InvokeContext(ctx context.Context, key string, op uint32, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := resultChPool.Get().(chan result)
	c.pending[id] = ch
	c.mu.Unlock()

	fr := frame{kind: kindRequest, id: id, key: key, op: op, body: body}
	if c.peerVer.Load() >= 2 {
		if budget := budgetMillis(ctx); budget > 0 {
			fr.ver = 2
			fr.budget = budget
		}
	}
	if err := c.write(ctx, fr); err != nil {
		c.abandon(id, ch)
		return nil, err
	}

	// The wait is additionally bounded by a pooled backstop timer armed
	// a little past the context's deadline. Deadline-only contexts
	// (resil's CallTimeout overlay) have no Done channel of their own,
	// so this timer is what enforces their deadline; contexts with a
	// live Done fire first and keep their own expiry semantics — the
	// slack exists so the backstop never races them.
	var timeoutCh <-chan time.Time
	var wt *time.Timer
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		wt = acquireWaitTimer(time.Until(deadline) + deadlineSlack)
		defer releaseWaitTimer(wt)
		timeoutCh = wt.C
	}
	for {
		select {
		case r := <-ch:
			resultChPool.Put(ch)
			if r.err != nil {
				return nil, r.err
			}
			if r.f.kind == kindError {
				return nil, errFromFrame(r.f)
			}
			return r.f.body, nil
		case <-ctx.Done():
			c.abandon(id, ch)
			if c.peerVer.Load() >= 2 {
				go c.sendCancel(id)
			}
			return nil, ctxErr(ctx.Err())
		case <-timeoutCh:
			if err := ctx.Err(); err != nil {
				// The context expired on its own terms while we were
				// being woken; report its verdict, not the backstop's.
				c.abandon(id, ch)
				if c.peerVer.Load() >= 2 {
					go c.sendCancel(id)
				}
				return nil, ctxErr(err)
			}
			if rem := time.Until(deadline); rem > 0 {
				// Spurious wake from a recycled timer; re-arm and keep
				// waiting out the remainder.
				wt.Reset(rem + deadlineSlack)
				continue
			}
			c.abandon(id, ch)
			if c.peerVer.Load() >= 2 {
				go c.sendCancel(id)
			}
			return nil, ErrDeadline
		}
	}
}

// abandon removes a call's pending entry. If the entry was still
// present, no sender can ever touch the channel and it returns to the
// pool; if the read loop already claimed it, the late send owns the
// channel and it is left to the GC.
func (c *Client) abandon(id uint64, ch chan result) {
	c.mu.Lock()
	_, mine := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if mine {
		select {
		case <-ch:
		default:
		}
		resultChPool.Put(ch)
	}
}

// Send delivers a one-way message: no reply, no delivery confirmation
// (the messaging model the collaborative-objects project needed, §5).
func (c *Client) Send(key string, op uint32, body []byte) error {
	return c.write(context.Background(), frame{kind: kindOneway, key: key, op: op, body: body})
}
