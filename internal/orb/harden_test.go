package orb

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerPanicIsolated asserts the server-side hardening contract:
// a panicking handler produces a typed ErrServerPanic at the client,
// bumps the Panics stat, and leaves the connection serving — the next
// request on the same connection must succeed.
func TestHandlerPanicIsolated(t *testing.T) {
	s := startServer(t)
	s.Register("svc", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		if op == 1 {
			panic("injected failure")
		}
		return body, nil
	})
	c := dial(t, s)

	_, err := c.Invoke("svc", 1, nil)
	if !errors.Is(err, ErrServerPanic) {
		t.Fatalf("err = %v, want ErrServerPanic", err)
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("err = %v, want panic value in message", err)
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Errorf("panic surfaced as RemoteError %v, want distinct sentinel", re)
	}

	// Same connection, next request: must be served normally.
	reply, err := c.Invoke("svc", 0, []byte("still alive"))
	if err != nil || string(reply) != "still alive" {
		t.Fatalf("post-panic invoke = %q, %v", reply, err)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
}

// TestCallRecoversPanic covers the bare helper used by servers that
// dispatch handlers on their own goroutines.
func TestCallRecoversPanic(t *testing.T) {
	h := func(ctx context.Context, op uint32, body []byte) ([]byte, error) { panic(op) }
	_, err := Call(context.Background(), h, 7, nil)
	if !errors.Is(err, ErrServerPanic) || !strings.Contains(err.Error(), "7") {
		t.Errorf("Call err = %v", err)
	}
	ok := func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil }
	out, err := Call(context.Background(), ok, 0, []byte("x"))
	if err != nil || string(out) != "x" {
		t.Errorf("Call = %q, %v", out, err)
	}
}

// TestPerConnCap floods one connection past its concurrency cap with
// handlers parked on a gate: the excess requests must be shed with
// ErrOverloaded while the admitted ones complete once released.
func TestPerConnCap(t *testing.T) {
	const lim = 4
	s, err := NewServer("127.0.0.1:0", WithMaxPerConn(lim))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	gate := make(chan struct{})
	entered := make(chan struct{}, 64)
	s.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		entered <- struct{}{}
		<-gate
		return body, nil
	})
	c := dial(t, s)

	var wg sync.WaitGroup
	errs := make(chan error, lim)
	for i := 0; i < lim; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Invoke("slow", 0, nil)
			errs <- err
		}()
	}
	for i := 0; i < lim; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers did not start")
		}
	}

	// Connection is at its cap: the next request must be shed, typed.
	_, err = c.Invoke("slow", 0, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}

	// A oneway over the cap is dropped silently, not an error.
	if err := c.Send("slow", 0, nil); err != nil {
		t.Errorf("oneway over cap: %v", err)
	}

	close(gate)
	wg.Wait()
	for i := 0; i < lim; i++ {
		if err := <-errs; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}

	// Capacity freed: the connection serves again.
	if _, err := c.Invoke("slow", 0, nil); err != nil {
		t.Fatalf("post-shed invoke: %v", err)
	}
}

// TestDialErrorTyped asserts dial failures carry the ErrDial sentinel so
// clients can map "daemon unreachable" to a distinct outcome.
func TestDialErrorTyped(t *testing.T) {
	_, err := Dial("127.0.0.1:1")
	if err == nil {
		t.Skip("something is listening on port 1")
	}
	if !errors.Is(err, ErrDial) {
		t.Errorf("err = %v, want ErrDial", err)
	}
}
