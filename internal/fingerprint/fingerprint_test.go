package fingerprint

import (
	"testing"

	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/mtype"
)

func pair(t *testing.T, a, b *mtype.Type, wantCanonEq, wantExactEq bool) {
	t.Helper()
	pa, pb := Of(a), Of(b)
	if (pa.Canonical == pb.Canonical) != wantCanonEq {
		t.Errorf("canonical equality = %v, want %v\n  a=%s\n  b=%s",
			pa.Canonical == pb.Canonical, wantCanonEq, a, b)
	}
	if (pa.Exact == pb.Exact) != wantExactEq {
		t.Errorf("exact equality = %v, want %v\n  a=%s\n  b=%s",
			pa.Exact == pb.Exact, wantExactEq, a, b)
	}
}

func TestPrimitives(t *testing.T) {
	i32 := mtype.NewIntegerBits(32, true)
	i32b := mtype.NewIntegerBits(32, true)
	pair(t, i32, i32b, true, true)
	pair(t, i32, mtype.NewIntegerBits(64, true), false, false)
	pair(t, i32, mtype.NewIntegerBits(32, false), false, false)
	pair(t, mtype.NewFloat32(), mtype.NewFloat32(), true, true)
	pair(t, mtype.NewFloat32(), mtype.NewFloat64(), false, false)
	pair(t, mtype.NewCharacter(mtype.RepASCII), mtype.NewCharacter(mtype.RepLatin1), false, false)
	pair(t, mtype.Unit(), mtype.Unit(), true, true)
	pair(t, mtype.Unit(), mtype.NewBool(), false, false)
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	build := func() *mtype.Type {
		return mtype.NewRecord(
			mtype.Field{Name: "a", Type: mtype.NewList(mtype.NewFloat32())},
			mtype.Field{Name: "b", Type: mtype.NewOptional(mtype.NewBool())},
			mtype.Field{Name: "c", Type: mtype.NewPort(mtype.NewFloat64())},
		)
	}
	if Of(build()) != Of(build()) {
		t.Fatal("independently built identical graphs digest differently")
	}
}

// Field names are cosmetic in the Mtype system and must not affect
// digests.
func TestNamesIgnored(t *testing.T) {
	a := mtype.NewRecord(
		mtype.Field{Name: "x", Type: mtype.NewFloat32()},
		mtype.Field{Name: "y", Type: mtype.NewBool()},
	)
	b := mtype.NewRecord(
		mtype.Field{Name: "lon", Type: mtype.NewFloat32()},
		mtype.Field{Name: "flag", Type: mtype.NewBool()},
	)
	pair(t, a, b, true, true)
}

func TestRecordPermutation(t *testing.T) {
	a := mtype.RecordOf(mtype.NewFloat32(), mtype.NewBool(), mtype.NewCharacter(mtype.RepUCS2))
	b := mtype.RecordOf(mtype.NewBool(), mtype.NewCharacter(mtype.RepUCS2), mtype.NewFloat32())
	// Canonical is permutation-stable; Exact is order-sensitive.
	pair(t, a, b, true, false)
}

func TestChoicePermutation(t *testing.T) {
	a := mtype.ChoiceOf(mtype.NewFloat32(), mtype.NewBool())
	b := mtype.ChoiceOf(mtype.NewBool(), mtype.NewFloat32())
	pair(t, a, b, true, false)
}

func TestRecordVsChoice(t *testing.T) {
	a := mtype.RecordOf(mtype.NewFloat32(), mtype.NewBool())
	b := mtype.ChoiceOf(mtype.NewFloat32(), mtype.NewBool())
	pair(t, a, b, false, false)
}

// Nested permutation: permuting the children of an inner record changes
// neither canonical digest, even though the inner record is itself a
// child whose color feeds the outer one.
func TestNestedPermutation(t *testing.T) {
	inner := func(flip bool) *mtype.Type {
		x, y := mtype.NewFloat32(), mtype.NewIntegerBits(16, true)
		if flip {
			return mtype.RecordOf(y, x)
		}
		return mtype.RecordOf(x, y)
	}
	a := mtype.RecordOf(inner(false), mtype.NewBool())
	b := mtype.RecordOf(mtype.NewBool(), inner(true))
	pair(t, a, b, true, false)
}

// Associativity is NOT folded into the digest: record(record(a,b),c) and
// record(a,b,c) are comparer-equivalent but digest differently. They
// occupy distinct cache entries, which is sound (just less shared).
func TestFlatteningNotCanonicalized(t *testing.T) {
	x, y, z := mtype.NewFloat32(), mtype.NewBool(), mtype.NewCharacter(mtype.RepASCII)
	a := mtype.RecordOf(mtype.RecordOf(x, y), z)
	b := mtype.RecordOf(x, y, z)
	pair(t, a, b, false, false)
}

func TestListUnrollingStable(t *testing.T) {
	list := mtype.NewList(mtype.NewFloat32())
	// One-step unrolling: a fresh copy of the body whose back-edge points
	// at the original μ node. Denotes the same regular tree.
	cons := mtype.NewRecord(
		mtype.Field{Name: "head", Type: mtype.NewFloat32()},
		mtype.Field{Name: "tail", Type: list},
	)
	unrolled := mtype.NewChoice(
		mtype.Alt{Name: "nil", Type: mtype.Unit()},
		mtype.Alt{Name: "cons", Type: cons},
	)
	pair(t, list, unrolled, true, true)

	// Two independently built lists.
	pair(t, list, mtype.NewList(mtype.NewFloat32()), true, true)
	// Different element types must differ.
	pair(t, list, mtype.NewList(mtype.NewFloat64()), false, false)
}

func TestMutualRecursion(t *testing.T) {
	// μA. record(int, μB. choice(unit, A)) built twice, plus a variant
	// with a different leaf.
	build := func(leaf *mtype.Type) *mtype.Type {
		a := mtype.NewRecursive()
		b := mtype.NewRecursive()
		b.SetBody(mtype.ChoiceOf(mtype.Unit(), a))
		a.SetBody(mtype.RecordOf(leaf, b))
		return a
	}
	pair(t, build(mtype.NewBool()), build(mtype.NewBool()), true, true)
	pair(t, build(mtype.NewBool()), build(mtype.NewFloat32()), false, false)
}

func TestNilAndUnbound(t *testing.T) {
	var zero Digest
	if Of(nil).Canonical == zero {
		t.Fatal("nil digest is the zero digest")
	}
	if Of(nil) != Of(nil) {
		t.Fatal("nil digest not deterministic")
	}
	unbound := mtype.NewRecursive()
	if Of(unbound) != Of(nil) {
		t.Fatal("unbound μ should digest like nil (bottom)")
	}
	if Of(nil).Canonical == Of(mtype.Unit()).Canonical {
		t.Fatal("nil digest collides with unit")
	}
}

// Two independently lowered, structurally equivalent declarations — the
// broker's motivating case — must produce comparable digests: here the
// same C struct spelled with permuted member order in two sessions.
func TestIndependentLoweringsComparable(t *testing.T) {
	mt := func(src string) *mtype.Type {
		s := core.NewSession()
		if err := s.LoadC("u", src, cmem.ILP32); err != nil {
			t.Fatal(err)
		}
		m, err := s.Mtype("u", "pt")
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mt("typedef struct { float x; float y; int tag; } pt;")
	b := mt("typedef struct { int kind; float a; float b; } pt;")
	c := mt("typedef struct { float x; float y; float z; } pt;")
	pa, pb, pc := Of(a), Of(b), Of(c)
	if pa.Canonical != pb.Canonical {
		t.Errorf("permuted structs should share a canonical digest:\n  %s\n  %s", a, b)
	}
	if pa.Exact == pb.Exact {
		t.Errorf("permuted structs must not share an exact digest")
	}
	if pa.Canonical == pc.Canonical {
		t.Errorf("different structs must differ canonically")
	}
}

func TestPairKey(t *testing.T) {
	a, b := Canonical(mtype.NewBool()), Canonical(mtype.NewFloat32())
	if Pair(a, b) == Pair(b, a) {
		t.Fatal("pair key must be ordered")
	}
	if Pair(a, b) != Pair(a, b) {
		t.Fatal("pair key not deterministic")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	ty := mtype.NewList(mtype.NewRecord(
		mtype.Field{Type: mtype.NewFloat32()},
		mtype.Field{Type: mtype.NewOptional(mtype.NewList(mtype.NewBool()))},
		mtype.Field{Type: mtype.NewPort(mtype.NewFloat64())},
	))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Of(ty)
	}
}
