// Package fingerprint computes canonical structural digests of cyclic
// Mtype graphs. The broker keys its shared caches on these digests, so
// that two declarations lowered independently — in different sessions,
// processes, or orderings — key to comparable values without exchanging
// the graphs themselves.
//
// The algorithm is iterative hash refinement (in the style of
// Weisfeiler–Leman color refinement, the same family used for graph
// canonization and bisimulation partitioning): every node starts from a
// label derived from its local shape, and each round replaces a node's
// color with a hash of its previous color, its label, and its children's
// colors. Recursive (μ) nodes are treated equi-recursively — a μ node *is*
// its body — so a graph and any of its unrollings refine to identical
// colors round by round. After a fixed number of rounds the root's colors
// under two independent seeds form the digest.
//
// Two digests are produced in one pass:
//
//   - Canonical: Record and Choice children are combined as a sorted
//     multiset of colors, so the digest is stable under child permutation
//     — the isomorphism the comparer decides modulo (§4 commutativity).
//     Canonical digests key verdict caches: permuted variants of the same
//     pair share one compare result.
//   - Exact: children are combined in declaration order. Exact digests key
//     compiled-converter caches, where field order is load-bearing: a
//     converter compiled for record(int, real) must not serve values of
//     record(real, int).
//
// Both digests are invariant under μ-unrolling and node identity, and
// deterministic across processes (no map iteration, no pointers hashed).
// Like mtype.Fingerprint, regular trees that first differ deeper than the
// refinement round count collide; that is acceptable for a cache key and
// unreachable for declaration-derived types, whose nesting is far
// shallower.
package fingerprint

import (
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/mtype"
)

// rounds is the number of refinement iterations. Colors at round k
// distinguish regular trees up to bisimulation depth k; 64 matches the
// truncation depth of mtype.Fingerprint.
const rounds = 64

// Digest is a 16-byte structural fingerprint (two independently seeded
// 64-bit refinement streams).
type Digest [16]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Print is the pair of digests computed for one graph.
type Print struct {
	// Canonical is stable under Record/Choice child permutation.
	Canonical Digest
	// Exact is sensitive to child order.
	Exact Digest
}

// PairKey is the cache key for an ordered pair of digests.
type PairKey [32]byte

// Pair combines two digests into an ordered pair key.
func Pair(a, b Digest) PairKey {
	var k PairKey
	copy(k[:16], a[:])
	copy(k[16:], b[:])
	return k
}

// Of computes both digests of the graph rooted at t. A nil t has a
// distinct well-defined digest.
func Of(t *mtype.Type) Print {
	g := buildGraph(t)
	var p Print
	p.Canonical = g.refine(true)
	p.Exact = g.refine(false)
	return p
}

// Canonical is shorthand for Of(t).Canonical.
func Canonical(t *mtype.Type) Digest { return Of(t).Canonical }

// Exact is shorthand for Of(t).Exact.
func Exact(t *mtype.Type) Digest { return Of(t).Exact }

// graph is the μ-collapsed view of an Mtype graph: only structural and
// primitive nodes, with child edges resolved through Recursive nodes.
type graph struct {
	root int // index of the root node, or -1 for nil/unbound types
	// label is the local shape hash of each node (kind + parameters +
	// child count), identical under both seeds.
	label []uint64
	// children holds child node indices in declaration order.
	children [][]int
	// commutative marks nodes whose children form a multiset (Record,
	// Choice) rather than a sequence.
	commutative []bool
}

// unroll follows Recursive bodies to the first non-μ node. It returns nil
// for nil types, unbound μ nodes, and (non-contractive) all-μ cycles —
// all of which digest to a distinct "bottom" value.
func unroll(t *mtype.Type) *mtype.Type {
	seen := 0
	for t != nil && t.Kind() == mtype.KindRecursive {
		t = t.Body()
		seen++
		if seen > 1<<16 { // non-contractive μ cycle
			return nil
		}
	}
	return t
}

func buildGraph(t *mtype.Type) *graph {
	g := &graph{}
	index := make(map[*mtype.Type]int)
	var walk func(n *mtype.Type) int
	walk = func(n *mtype.Type) int {
		n = unroll(n)
		if n == nil {
			return -1
		}
		if i, ok := index[n]; ok {
			return i
		}
		i := len(g.label)
		index[n] = i
		g.label = append(g.label, 0)
		g.children = append(g.children, nil)
		g.commutative = append(g.commutative, false)

		h := newHash(0x9e3779b97f4a7c15)
		h.mix(uint64(n.Kind()))
		var kids []*mtype.Type
		switch n.Kind() {
		case mtype.KindInteger:
			lo, hi := n.IntegerRange()
			h.mixString(lo.String())
			h.mixString(hi.String())
		case mtype.KindCharacter:
			h.mix(uint64(n.Repertoire()))
		case mtype.KindReal:
			p, e := n.RealParams()
			h.mix(uint64(p))
			h.mix(uint64(e))
		case mtype.KindUnit:
			// kind alone
		case mtype.KindRecord:
			for _, f := range n.Fields() {
				kids = append(kids, f.Type)
			}
			h.mix(uint64(len(kids)))
			g.commutative[i] = true
		case mtype.KindChoice:
			for _, a := range n.Alts() {
				kids = append(kids, a.Type)
			}
			// Salt choices so Record(τ) and Choice(τ) never share a label.
			h.mix(0xC401CE)
			h.mix(uint64(len(kids)))
			g.commutative[i] = true
		case mtype.KindPort:
			kids = []*mtype.Type{n.Elem()}
			h.mix(0x9087)
		}
		g.label[i] = h.sum()

		idx := make([]int, len(kids))
		for j, k := range kids {
			idx[j] = walk(k)
		}
		g.children[i] = idx
		return i
	}
	g.root = walk(t)
	return g
}

// refine runs the fixed number of refinement rounds under two seeds and
// returns the root's final colors as a digest.
func (g *graph) refine(canonical bool) Digest {
	var d Digest
	if g.root < 0 {
		// nil / unbound: a fixed distinguished digest.
		copy(d[:], []byte("mbird:nil-type!!"))
		return d
	}
	seeds := [2]uint64{0xcbf29ce484222325, 0x100000001b3f00d}
	for s, seed := range seeds {
		colors := make([]uint64, len(g.label))
		next := make([]uint64, len(g.label))
		for i := range colors {
			colors[i] = g.label[i] ^ seed
		}
		var scratch []uint64
		for r := 0; r < rounds; r++ {
			for i := range next {
				h := newHash(seed)
				h.mix(colors[i])
				h.mix(g.label[i])
				kids := g.children[i]
				if canonical && g.commutative[i] {
					scratch = scratch[:0]
					for _, c := range kids {
						scratch = append(scratch, childColor(colors, c))
					}
					sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
					for _, cc := range scratch {
						h.mix(cc)
					}
				} else {
					for _, c := range kids {
						h.mix(childColor(colors, c))
					}
				}
				next[i] = h.sum()
			}
			colors, next = next, colors
		}
		binary.LittleEndian.PutUint64(d[8*s:], colors[g.root])
	}
	return d
}

// childColor maps the -1 sentinel (nil / unbound child) to a fixed color.
func childColor(colors []uint64, i int) uint64 {
	if i < 0 {
		return 0xdeadbeefdead
	}
	return colors[i]
}

// hash is a seeded FNV-1a-style 64-bit mixer.
type hash struct{ h uint64 }

const prime64 = 1099511628211

func newHash(seed uint64) *hash { return &hash{h: 14695981039346656037 ^ seed} }

func (x *hash) mix(v uint64) {
	for i := 0; i < 8; i++ {
		x.h ^= v & 0xff
		x.h *= prime64
		v >>= 8
	}
}

func (x *hash) mixString(s string) {
	for i := 0; i < len(s); i++ {
		x.h ^= uint64(s[i])
		x.h *= prime64
	}
	// Terminator so "ab","c" and "a","bc" differ.
	x.h ^= 0xff
	x.h *= prime64
}

func (x *hash) sum() uint64 { return x.h }
