package repro_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary and checks its key output
// line, so the runnable documentation cannot rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go-run integration")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{
			"comparer verdict: equivalent",
			"fitted line: (1, 2) -> (3, 7)",
		}},
		{"fitter-net", []string{
			"client: fitted line start = {0, -3}",
			"client: fitted line end   = {10, 10}",
		}},
		{"collab", []string{
			"message CellEdit   : equivalent",
			"received: CursorMove {1, {4, 7}}",
		}},
		{"notes", []string{
			"bridged 30/30 classes",
		}},
		{"dynamic", []string{
			"converted into local shape: {{21.5, 0.25}, 7}",
		}},
		{"go-idl", []string{
			"Store matches its IDL peer: equivalent",
			"converted for the IDL peer: {1, 2.5, 12}",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(goBin, "run", "./examples/"+c.dir)
			cmd.Dir = root
			cmd.Env = append(os.Environ(), "GOPROXY=off")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
